#include "query/query_executor.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/stopwatch.h"
#include "query/frame_memo.h"
#include "query/resolved_query_cache.h"
#include "tensor/prefix_sum.h"
#include "tensor/tiled_sat.h"

namespace one4all {

namespace query_internal {

double FoldSeries(const std::vector<double>& series, TimeAggregation agg) {
  switch (agg) {
    case TimeAggregation::kSum:
    case TimeAggregation::kMean: {
      double acc = 0.0;
      for (const double v : series) acc += v;
      if (agg == TimeAggregation::kMean) {
        acc /= static_cast<double>(series.size());
      }
      return acc;
    }
    case TimeAggregation::kMax: {
      double best = series.front();
      for (const double v : series) best = std::max(best, v);
      return best;
    }
  }
  return 0.0;
}

QueryRow MakeQueryRow(const std::vector<double>& series, TimeAggregation agg,
                      bool keep_series, const ResolvedQuery& rq,
                      bool cache_hit, double probe_micros,
                      double eval_micros, TraceContext* trace) {
  QueryRow row;
  {
    ScopedSpan fold_span(trace, SpanName::kFold,
                         static_cast<int64_t>(series.size()));
    row.value = FoldSeries(series, agg);
  }
  if (keep_series) row.series = series;
  row.num_pieces = rq.num_pieces;
  row.num_terms = static_cast<int>(rq.terms.size());
  row.from_cache = cache_hit;
  row.eval_micros = eval_micros;
  if (cache_hit) {
    // Decompose + index were skipped; report the actual resolve-path
    // latency (the cache lookup).
    row.response_micros = probe_micros;
  } else {
    row.decompose_micros = rq.decompose_micros;
    row.index_micros = rq.index_micros;
    row.response_micros = rq.decompose_micros + rq.index_micros;
  }
  return row;
}

void RankTopK(const QueryPlan& plan, TraceContext* trace,
              QueryResult* result) {
  if (plan.spec.kind != QuerySpecKind::kTopK) return;
  ScopedSpan rank_span(trace, SpanName::kRank, plan.spec.top_k);
  Stopwatch stage_timer;
  std::vector<int> order;
  order.reserve(result->rows.size());
  for (size_t i = 0; i < result->rows.size(); ++i) {
    if (result->rows[i].ok()) order.push_back(static_cast<int>(i));
  }
  const size_t k = std::min(order.size(),
                            static_cast<size_t>(plan.spec.top_k));
  std::partial_sort(order.begin(), order.begin() + static_cast<int64_t>(k),
                    order.end(), [&](int a, int b) {
                      const double va =
                          result->rows[static_cast<size_t>(a)]->value;
                      const double vb =
                          result->rows[static_cast<size_t>(b)]->value;
                      if (va != vb) return va > vb;
                      return a < b;
                    });
  order.resize(k);
  result->top_k = std::move(order);
  result->timings.rank_micros = stage_timer.ElapsedMicros();
}

}  // namespace query_internal

namespace {

/// \brief Outcome of the resolve stage for one distinct region.
struct SlotResolution {
  Result<std::shared_ptr<const ResolvedQuery>> resolved =
      Status::Internal("slot not resolved");
  bool cache_hit = false;
  double probe_micros = 0.0;
};

QueryRow MakeRow(const std::vector<double>& series, TimeAggregation agg,
                 bool keep_series, const ResolvedQuery& rq,
                 const SlotResolution& slot, double eval_micros,
                 TraceContext* trace) {
  return query_internal::MakeQueryRow(series, agg, keep_series, rq,
                                      slot.cache_hit, slot.probe_micros,
                                      eval_micros, trace);
}

// -- SAT fast path ----------------------------------------------------------

/// \brief One (layer, t) the fast path needs, with whatever was fetched
/// for it. Frames and planes are fetched once per *plan* (the exact path
/// re-fetches per worker chunk), then read concurrently by every row.
/// The hot row loop reads raw pointers hoisted at fetch time — no
/// Result<> unwrapping per rect/residue read.
struct FrameTableEntry {
  int layer = 0;
  int64_t t = 0;
  bool need_frame = false;
  bool need_plane = false;
  /// Raw frame cells (null when the frame is missing; `error` says why).
  const float* frame_data = nullptr;
  int64_t frame_width = 0;
  /// The tiled summed-area plane, shared straight out of the store
  /// (an O(1) refcount bump, not a blob decode — the epoch pin keeps it
  /// alive). Null: not published for this generation — rect reads then
  /// fall back to direct sums over `frame_data`.
  std::shared_ptr<const TiledSatPlane> plane;
  Status error;  ///< frame fetch failure (typically NotFound)

  Tensor frame_storage;  ///< owns frame_data
};

bool EntryKeyLess(const FrameTableEntry& e, std::pair<int, int64_t> key) {
  if (e.layer != key.first) return e.layer < key.first;
  return e.t < key.second;
}

const FrameTableEntry* FindEntry(const std::vector<FrameTableEntry>& table,
                                 int layer, int64_t t) {
  auto it = std::lower_bound(table.begin(), table.end(),
                             std::make_pair(layer, t), EntryKeyLess);
  O4A_DCHECK(it != table.end() && it->layer == layer && it->t == t);
  return &*it;
}

/// \brief Fallback rect sum when a generation carries no plane for this
/// (layer, t): sum the frame rows directly. Still O(area), but contiguous
/// and without per-cell term bookkeeping.
double RectSumOnFrame(const float* data, int64_t width,
                      const SatRectRead& rect) {
  double acc = 0.0;
  for (int64_t r = rect.r0; r < rect.r1; ++r) {
    const float* row = data + r * width;
    for (int64_t c = rect.c0; c < rect.c1; ++c) {
      acc += static_cast<double>(row[c]);
    }
  }
  return acc;
}

/// \brief Above this many (row, timestep) gather points the fast path's
/// upfront frame-table prefetch could materialize an unreasonable table
/// before any per-row NotFound gets the chance to surface; such plans
/// (far past serving admission budgets) take the exact path instead.
constexpr int64_t kMaxFastPathGathers = int64_t{1} << 20;

using query_internal::RankTopK;

}  // namespace

QueryExecutor::QueryExecutor(const RegionQueryServer* server)
    : server_(server) {
  O4A_CHECK(server != nullptr);
}

QueryResult QueryExecutor::Execute(const QueryPlan& plan,
                                   const QueryExecutorOptions& options) const {
  Stopwatch total_timer;
  QueryResult result;
  result.kind = plan.spec.kind;
  result.timings.plan_micros = plan.plan_micros;
  result.rows.assign(plan.rows.size(),
                     Status::Internal("row not evaluated"));

  // -- Stage 1: cache-probe / resolve each distinct region ---------------
  Stopwatch stage_timer;
  std::vector<SlotResolution> slots(plan.slot_regions.size());
  {
    ScopedSpan resolve_span(options.trace, SpanName::kResolve,
                            static_cast<int64_t>(slots.size()));
    query_internal::RunSharded(
        options.pool, options.num_threads,
        static_cast<int64_t>(slots.size()),
        [&](int64_t begin, int64_t end) {
          // Each shard spans against its own copy of the trace context:
          // ScopedSpan mutates parent_span, which must stay thread-local.
          TraceContext shard_trace;
          if (options.trace != nullptr) shard_trace = *options.trace;
          for (int64_t s = begin; s < end; ++s) {
            SlotResolution& slot = slots[static_cast<size_t>(s)];
            const GridMask& region =
                plan.RegionForSlot(static_cast<int>(s));
            ScopedSpan probe_span(&shard_trace, SpanName::kCacheProbe);
            Stopwatch probe;
            slot.resolved = server_->ResolveCached(
                region, plan.spec.strategy, options.cache,
                &slot.cache_hit);
            // Captured before evaluation so a hit reports only the
            // resolve-path latency, comparable to decompose+index.
            slot.probe_micros = probe.ElapsedMicros();
            probe_span.set_arg(slot.cache_hit ? 1 : 0);
          }
        });
  }
  result.timings.resolve_micros = stage_timer.ElapsedMicros();
  if (options.cache != nullptr) {
    for (const SlotResolution& slot : slots) {
      if (!slot.resolved.ok()) continue;
      if (slot.cache_hit) {
        ++result.cache_hits;
      } else {
        ++result.cache_misses;
      }
    }
  }

  // -- Stage 2: epoch-pinned frame gather + aggregation fold -------------
  stage_timer.Restart();
  const bool keep_series =
      plan.spec.keep_series && !plan.spec.time.IsPoint();

  if (plan.path == EvalPath::kSatFastPath &&
      plan.num_point_queries() <= kMaxFastPathGathers) {
    ScopedSpan gather_span(options.trace, SpanName::kGather,
                           plan.num_point_queries());
    // Fast path, phase 1: collect every (layer, t) the plan touches and
    // fetch frames/planes for them once, in parallel. Rows only read the
    // table afterwards, so no synchronization is needed in phase 2.
    // Layer needs dedup per slot first (rows sharing a resolution share
    // its layer set), then expand over timesteps into lightweight keys.
    struct LayerNeedKey {
      int layer = 0;
      bool need_frame = false;
      bool need_plane = false;
    };
    std::vector<LayerNeedKey> layer_needs;
    std::vector<char> slot_seen(slots.size(), 0);
    int64_t t_min = 0, t_max = -1;
    for (const PlanRow& planned : plan.rows) {
      const size_t s = static_cast<size_t>(planned.region_slot);
      if (!slots[s].resolved.ok()) continue;
      if (t_max < t_min) {
        t_min = planned.t0;
        t_max = planned.t1;
      } else {
        t_min = std::min(t_min, planned.t0);
        t_max = std::max(t_max, planned.t1);
      }
      if (slot_seen[s]) continue;
      slot_seen[s] = 1;
      for (const GatherLayerNeed& need : (**slots[s].resolved).gather.layers) {
        layer_needs.push_back(
            LayerNeedKey{need.layer, need.needs_frame, need.needs_plane});
      }
    }
    std::sort(layer_needs.begin(), layer_needs.end(),
              [](const LayerNeedKey& a, const LayerNeedKey& b) {
                return a.layer < b.layer;
              });
    size_t kept = 0;
    for (size_t i = 0; i < layer_needs.size(); ++i) {
      if (kept > 0 && layer_needs[kept - 1].layer == layer_needs[i].layer) {
        layer_needs[kept - 1].need_frame |= layer_needs[i].need_frame;
        layer_needs[kept - 1].need_plane |= layer_needs[i].need_plane;
      } else {
        layer_needs[kept++] = layer_needs[i];
      }
    }
    layer_needs.resize(kept);

    // Every spec-shape row shares the plan's time selector, so the table
    // is the dense (distinct layers) x [t_min, t_max] grid — which is
    // what lets phase 2 index a layer's entries by timestep offset.
    std::vector<FrameTableEntry> table;
    table.resize(layer_needs.size() *
                 static_cast<size_t>(t_max - t_min + 1));
    {
      size_t i = 0;
      for (const LayerNeedKey& need : layer_needs) {
        for (int64_t t = t_min; t <= t_max; ++t, ++i) {
          table[i].layer = need.layer;
          table[i].t = t;
          table[i].need_frame = need.need_frame;
          table[i].need_plane = need.need_plane;
        }
      }
    }

    const PredictionStore* store = server_->store();
    query_internal::RunSharded(
        options.pool, options.num_threads,
        static_cast<int64_t>(table.size()),
        [&](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            FrameTableEntry& entry = table[static_cast<size_t>(i)];
            if (entry.need_plane) {
              Result<std::shared_ptr<const TiledSatPlane>> plane =
                  store->GetTiledSatPlaneAt(options.generation, entry.layer,
                                            entry.t);
              if (plane.ok()) {
                entry.plane = plane.MoveValueUnsafe();
              } else if (plane.status().code() == StatusCode::kNotFound) {
                // No plane published for this generation (e.g. the
                // static offline generation before BuildSatPlanes):
                // rect reads degrade to direct frame sums instead of
                // failing the row.
                entry.need_frame = true;
              } else {
                // Anything else (corrupt blob, size mismatch) is a
                // store defect: fail the rows loudly rather than
                // silently eating the fast path's speedup forever.
                entry.error = plane.status();
                continue;
              }
            }
            if (entry.need_frame) {
              Result<Tensor> frame = store->GetFrameAt(
                  options.generation, entry.layer, entry.t);
              if (frame.ok()) {
                entry.frame_storage = frame.MoveValueUnsafe();
                entry.frame_data = entry.frame_storage.data();
                entry.frame_width = entry.frame_storage.dim(1);
              } else {
                entry.error = frame.status();
              }
            }
          }
        });

    // Phase 2: per-row interpretation of the compiled gather programs.
    query_internal::RunSharded(
        options.pool, options.num_threads,
        static_cast<int64_t>(plan.rows.size()),
        [&](int64_t begin, int64_t end) {
          TraceContext shard_trace;
          if (options.trace != nullptr) shard_trace = *options.trace;
          std::vector<double> series;
          std::vector<const FrameTableEntry*> layer_bases;
          for (int64_t i = begin; i < end; ++i) {
            const PlanRow& planned = plan.rows[static_cast<size_t>(i)];
            const SlotResolution& slot =
                slots[static_cast<size_t>(planned.region_slot)];
            if (!slot.resolved.ok()) {
              result.rows[static_cast<size_t>(i)] = slot.resolved.status();
              continue;
            }
            const ResolvedQuery& rq = **slot.resolved;
            const GatherProgram& program = rq.gather;
            series.clear();
            series.reserve(static_cast<size_t>(
                std::min<int64_t>(planned.num_steps(), 4096)));
            // One binary search per (row, layer): a layer's entries for
            // the row's [t0, t1] are table-contiguous (every row of a
            // spec plan shares the spec's time selector), so the t loop
            // below just offsets from the base.
            layer_bases.assign(program.layers.size(), nullptr);
            for (size_t li = 0; li < program.layers.size(); ++li) {
              layer_bases[li] =
                  FindEntry(table, program.layers[li].layer, planned.t0);
              // Contiguity check: the last step of the row's range must
              // sit exactly num_steps-1 entries after the base.
              O4A_DCHECK(
                  (layer_bases[li] + (planned.t1 - planned.t0))->layer ==
                      program.layers[li].layer &&
                  (layer_bases[li] + (planned.t1 - planned.t0))->t ==
                      planned.t1);
            }
            Stopwatch eval_timer;
            Status gather = Status::OK();
            for (int64_t t = planned.t0; t <= planned.t1; ++t) {
              const int64_t dt = t - planned.t0;
              double acc = 0.0;
              for (const SatRectRead& rect : program.rects) {
                const FrameTableEntry* entry =
                    layer_bases[static_cast<size_t>(rect.layer_index)] +
                    dt;
                if (entry->plane != nullptr) {
                  acc += static_cast<double>(rect.sign) *
                         entry->plane->RectSum(rect.r0, rect.c0, rect.r1,
                                               rect.c1);
                } else if (entry->frame_data != nullptr) {
                  acc += static_cast<double>(rect.sign) *
                         RectSumOnFrame(entry->frame_data,
                                        entry->frame_width, rect);
                } else {
                  gather = entry->error;
                  break;
                }
              }
              if (!gather.ok()) break;
              for (const ResidueRead& residue : program.residues) {
                const FrameTableEntry* entry =
                    layer_bases[static_cast<size_t>(
                        residue.layer_index)] +
                    dt;
                if (entry->frame_data == nullptr) {
                  gather = entry->error;
                  break;
                }
                acc += static_cast<double>(residue.sign) *
                       static_cast<double>(
                           entry->frame_data[residue.offset]);
              }
              if (!gather.ok()) break;
              series.push_back(acc);
            }
            const double eval_micros = eval_timer.ElapsedMicros();
            if (!gather.ok()) {
              result.rows[static_cast<size_t>(i)] = std::move(gather);
              continue;
            }
            result.rows[static_cast<size_t>(i)] =
                MakeRow(series, plan.spec.aggregation, keep_series, rq,
                        slot, eval_micros, &shard_trace);
          }
        });
    gather_span.Close();
    result.timings.eval_micros = stage_timer.ElapsedMicros();
    RankTopK(plan, options.trace, &result);
    result.timings.total_micros = total_timer.ElapsedMicros();
    return result;
  }

  ScopedSpan gather_span(options.trace, SpanName::kGather,
                         plan.num_point_queries());

  query_internal::RunSharded(
      options.pool, options.num_threads,
      static_cast<int64_t>(plan.rows.size()),
      [&](int64_t begin, int64_t end) {
        TraceContext shard_trace;
        if (options.trace != nullptr) shard_trace = *options.trace;
        query_internal::FrameMemo memo(server_->store(), options.generation);
        std::vector<double> series;
        for (int64_t i = begin; i < end; ++i) {
          const PlanRow& planned = plan.rows[static_cast<size_t>(i)];
          const SlotResolution& slot =
              slots[static_cast<size_t>(planned.region_slot)];
          if (!slot.resolved.ok()) {
            result.rows[static_cast<size_t>(i)] = slot.resolved.status();
            continue;
          }
          const ResolvedQuery& rq = **slot.resolved;
          series.clear();
          // Clamped reserve: a hint only, so a huge (likely mistaken)
          // range cannot bad_alloc here before the first gather gets the
          // chance to fail with a per-row NotFound.
          series.reserve(static_cast<size_t>(
              std::min<int64_t>(planned.num_steps(), 4096)));
          Stopwatch eval_timer;
          Status gather = Status::OK();
          for (int64_t t = planned.t0; t <= planned.t1; ++t) {
            double value = 0.0;
            gather = memo.Evaluate(rq.terms, t, &value);
            if (!gather.ok()) break;
            series.push_back(value);
          }
          const double eval_micros = eval_timer.ElapsedMicros();
          if (!gather.ok()) {
            result.rows[static_cast<size_t>(i)] = std::move(gather);
            continue;
          }
          result.rows[static_cast<size_t>(i)] =
              MakeRow(series, plan.spec.aggregation, keep_series, rq,
                      slot, eval_micros, &shard_trace);
        }
      });
  gather_span.Close();
  result.timings.eval_micros = stage_timer.ElapsedMicros();
  RankTopK(plan, options.trace, &result);
  result.timings.total_micros = total_timer.ElapsedMicros();
  return result;
}

}  // namespace one4all
