// Compiled gather form of a resolved region query: the per-term list a
// resolution produces (one signed frame cell per term) folded into
//   - SAT rect reads: maximal axis-aligned rectangles of same-sign terms
//     within one layer, each answered by a four-corner read of that
//     layer's summed-area plane (tensor/prefix_sum.h) — O(#rects)
//     however many cells the rectangles cover, and
//   - residue reads: the irregular leftovers, as flat element offsets
//     into the layer frame precomputed once at resolve time and kept
//     offset-sorted so the executor sweeps each frame contiguously.
// Compiled once per resolution (and therefore cached with it in the
// ResolvedQueryCache); the QueryExecutor's kSatFastPath interprets it
// against the epoch-pinned frame/plane set.
#ifndef ONE4ALL_QUERY_GATHER_PROGRAM_H_
#define ONE4ALL_QUERY_GATHER_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "combine/combination.h"
#include "grid/hierarchy.h"

namespace one4all {

/// \brief Cells per rectangle below which a rect stays in the residue
/// stream: a four-corner plane read only beats per-cell frame reads once
/// the rectangle covers more cells than corners.
constexpr int64_t kMinSatRectCells = 4;

/// \brief One four-corner summed-area read: the signed sum of a layer
/// frame over the half-open rectangle [r0, r1) x [c0, c1).
struct SatRectRead {
  int layer = 1;
  int layer_index = 0;  ///< index into GatherProgram::layers
  int64_t r0 = 0, c0 = 0, r1 = 0, c1 = 0;
  int8_t sign = 1;

  int64_t num_cells() const { return (r1 - r0) * (c1 - c0); }
};

/// \brief One signed single-cell read at a precomputed flat offset
/// (row * layer_width + col) into the layer frame.
struct ResidueRead {
  int layer = 1;
  int layer_index = 0;  ///< index into GatherProgram::layers
  int64_t offset = 0;
  int8_t sign = 1;
};

/// \brief What a layer contributes to the program — whether the executor
/// must fetch the layer's summed-area plane, its raw frame, or both.
struct GatherLayerNeed {
  int layer = 1;
  bool needs_plane = false;  ///< the program has rect reads at this layer
  bool needs_frame = false;  ///< the program has residue reads here
};

/// \brief The full compiled gather of one resolution. Evaluating it at
/// timestep t (rects via planes, residues via frames, layers ascending)
/// equals the per-term sum over the same (layer, t) frames up to
/// double-rounding of the summed-area prefix arithmetic.
struct GatherProgram {
  std::vector<SatRectRead> rects;      ///< layer-ascending
  std::vector<ResidueRead> residues;   ///< (layer, offset)-ascending
  std::vector<GatherLayerNeed> layers; ///< distinct layers, ascending
  int64_t num_rect_terms = 0;  ///< terms folded into `rects`

  bool empty() const { return rects.empty() && residues.empty(); }
  /// \brief Reads the executor performs per timestep (4 per rect + 1 per
  /// residue) — the fast path's analogue of the term count.
  int64_t num_reads() const {
    return 4 * static_cast<int64_t>(rects.size()) +
           static_cast<int64_t>(residues.size());
  }

  /// \brief One-line compilation summary ("3 rects (58 terms) + 7
  /// residues over 4 layers") for EXPLAIN output.
  std::string Summary() const;
};

/// \brief Compiles resolved combination terms into a gather program.
/// Same-layer, same-sign terms forming axis-aligned rectangles of at
/// least kMinSatRectCells cells become SAT rect reads; everything else
/// (small rects, scattered cells, duplicate terms) becomes residue
/// reads. The decomposition is exact: evaluating the program reproduces
/// the signed per-term sum.
GatherProgram CompileGatherProgram(const std::vector<CombinationTerm>& terms,
                                   const Hierarchy& hierarchy);

}  // namespace one4all

#endif  // ONE4ALL_QUERY_GATHER_PROGRAM_H_
