// Incremental top-k ranking across epochs. A subscribed top-k query is
// the same spec re-issued at each newly published timestep; between two
// issues only the tiles the ingestor marked dirty actually changed, so
// any region whose term footprint misses every intervening dirty set
// must rank with the exact value it had last time. The memo keeps the
// last evaluation of each distinct top-k spec plus a bounded history of
// per-publish dirty sets, and tells the serving runtime which rows it
// may carry over verbatim — the executor then re-gathers only the rows
// the churn could have moved, and the ranking is re-sorted locally.
//
// Soundness over cleverness: a row is reused only when every publish
// since its memoized timestep is in the history window AND carries a
// known dirty set that misses the row's footprint at every layer. The
// footprint is the region's atomic bounding box rounded out to the
// coarsest layer's grid boundaries — a superset of every combination
// term the planner can choose for the region (union grids intersect the
// region, subtraction grids lie inside union grids), so over-marking
// only costs a re-evaluation, never a stale value.
#ifndef ONE4ALL_QUERY_TOPK_MEMO_H_
#define ONE4ALL_QUERY_TOPK_MEMO_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <list>
#include <mutex>
#include <vector>

#include "grid/hierarchy.h"
#include "query/query_executor.h"
#include "query/query_spec.h"
#include "tensor/tiled_sat.h"

namespace one4all {

struct TopKMemoOptions {
  /// Distinct memoized specs (LRU-evicted beyond this).
  size_t capacity = 64;
  /// Publish records retained; a memoized evaluation older than the
  /// oldest retained publish cannot prove any row clean and misses.
  size_t history = 64;
};

class TopKMemo {
 public:
  /// \param hierarchy Must outlive the memo (layer scales map atomic
  /// footprints onto each layer's dirty grid).
  explicit TopKMemo(const Hierarchy* hierarchy, TopKMemoOptions options = {});

  TopKMemo(const TopKMemo&) = delete;
  TopKMemo& operator=(const TopKMemo&) = delete;

  /// \brief Records one published epoch: timestep `t` changed `dirty`
  /// (per-layer, indexed [layer-1]) vs. t-1. Null — or any unknown /
  /// missing per-layer entry — is remembered as "everything changed".
  /// Thread-safe against concurrent Lookup/Store.
  void OnPublish(int64_t t, const DirtyTileSets* dirty);

  /// \brief Drops every memoized spec and the publish history (index
  /// swap: resolutions change, so carried values may too).
  void Invalidate();

  /// \brief What a probe proved about a spec about to execute.
  struct Probe {
    bool hit = false;    ///< entry found for this exact spec
    int64_t memo_t = -1; ///< timestep of the memoized evaluation
    /// Per region index: true when the memoized row provably still
    /// holds at the probed timestep. Sized spec.regions.size() on hit.
    std::vector<bool> clean;
    /// The memoized rows (aligned with `clean`); only entries whose
    /// clean flag is true may be carried into a merged result.
    std::vector<Result<QueryRow>> rows;
  };

  /// \brief Probes for `spec` (must be a point-selector kTopK; anything
  /// else misses). A hit proves, per row, whether the memoized value is
  /// still exact at spec.time.t0 given every publish since memo_t.
  /// Non-const: a hit refreshes the entry's LRU position.
  Probe Lookup(const QuerySpec& spec);

  /// \brief Memoizes `rows` as the evaluation of `spec` at its (point)
  /// timestep. Failed rows are stored too — they stay failed until
  /// their footprint churns. Non-top-k / non-point specs are ignored.
  void Store(const QuerySpec& spec, const std::vector<Result<QueryRow>>& rows);

  /// \brief RankTopK's exact ordering (value desc, ties toward the lower
  /// row index, failed rows skipped, clamped to k) over free rows —
  /// used to re-rank a merged memo+fresh row set.
  static std::vector<int> RankRows(const std::vector<Result<QueryRow>>& rows,
                                   int k);

  int64_t rows_reused() const {
    return rows_reused_.load(std::memory_order_relaxed);
  }
  int64_t rows_reevaluated() const {
    return rows_reevaluated_.load(std::memory_order_relaxed);
  }
  /// \brief Test/telemetry hook for the merge path in the runtime.
  void CountReuse(int64_t reused, int64_t reevaluated) {
    rows_reused_.fetch_add(reused, std::memory_order_relaxed);
    rows_reevaluated_.fetch_add(reevaluated, std::memory_order_relaxed);
  }

 private:
  struct PublishRecord {
    int64_t t = 0;
    bool all_dirty = false;  ///< no usable dirty info: assume everything
    DirtyTileSets dirty;     ///< per layer, [layer-1]; empty if all_dirty
  };

  struct Entry {
    uint64_t fingerprint = 0;
    QuerySpec spec;  ///< regions + knobs, for exact-match verification
    int64_t t = -1;  ///< timestep the rows were evaluated at
    std::vector<Result<QueryRow>> rows;
    /// Per region: atomic bbox rounded out to the coarsest scale (the
    /// term-footprint superset checked against dirty sets).
    std::vector<CellRect> footprints;
  };

  static uint64_t Fingerprint(const QuerySpec& spec);
  static bool SameSpecShape(const QuerySpec& a, const QuerySpec& b);
  CellRect FootprintOf(const GridMask& region) const;
  /// \brief True iff `record` cannot have changed any cell of `footprint`.
  bool FootprintClean(const CellRect& footprint,
                      const PublishRecord& record) const;

  const Hierarchy* hierarchy_;
  TopKMemoOptions options_;

  mutable std::mutex mu_;
  /// MRU-front LRU of memoized specs.
  std::list<Entry> entries_;
  /// Publish history, newest at the back; bounded by options_.history.
  std::deque<PublishRecord> publishes_;

  std::atomic<int64_t> rows_reused_{0};
  std::atomic<int64_t> rows_reevaluated_{0};
};

}  // namespace one4all

#endif  // ONE4ALL_QUERY_TOPK_MEMO_H_
