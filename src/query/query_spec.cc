#include "query/query_spec.h"

#include <limits>
#include <sstream>

namespace one4all {

const char* QueryStrategyName(QueryStrategy strategy) {
  switch (strategy) {
    case QueryStrategy::kDirect: return "Direct";
    case QueryStrategy::kUnion: return "Union";
    case QueryStrategy::kUnionSubtraction: return "Union & Subtraction";
  }
  return "?";
}

const char* EvalPathName(EvalPath path) {
  switch (path) {
    case EvalPath::kExactCellLoop: return "exact-cell-loop";
    case EvalPath::kSatFastPath: return "sat-fast-path";
  }
  return "?";
}

const char* QuerySpecKindName(QuerySpecKind kind) {
  switch (kind) {
    case QuerySpecKind::kPointInTime: return "PointInTime";
    case QuerySpecKind::kTimeRange: return "TimeRange";
    case QuerySpecKind::kMultiRegion: return "MultiRegion";
    case QuerySpecKind::kTopK: return "TopK";
    case QuerySpecKind::kPointBatch: return "PointBatch";
  }
  return "?";
}

const char* TimeAggregationName(TimeAggregation agg) {
  switch (agg) {
    case TimeAggregation::kSum: return "sum";
    case TimeAggregation::kMean: return "mean";
    case TimeAggregation::kMax: return "max";
  }
  return "?";
}

QuerySpec QuerySpec::PointInTime(GridMask region, int64_t t,
                                 QueryStrategy strategy) {
  QuerySpec spec;
  spec.kind = QuerySpecKind::kPointInTime;
  spec.regions.push_back(std::move(region));
  spec.time = TimeSelector::At(t);
  spec.strategy = strategy;
  return spec;
}

QuerySpec QuerySpec::TimeRange(GridMask region, int64_t t0, int64_t t1,
                               TimeAggregation aggregation,
                               QueryStrategy strategy) {
  QuerySpec spec;
  spec.kind = QuerySpecKind::kTimeRange;
  spec.regions.push_back(std::move(region));
  spec.time = TimeSelector::Range(t0, t1);
  spec.aggregation = aggregation;
  spec.strategy = strategy;
  return spec;
}

QuerySpec QuerySpec::MultiRegion(std::vector<GridMask> regions, int64_t t,
                                 QueryStrategy strategy) {
  QuerySpec spec;
  spec.kind = QuerySpecKind::kMultiRegion;
  spec.regions = std::move(regions);
  spec.time = TimeSelector::At(t);
  spec.strategy = strategy;
  return spec;
}

QuerySpec QuerySpec::TopK(std::vector<GridMask> regions, int64_t t, int k,
                          QueryStrategy strategy) {
  QuerySpec spec;
  spec.kind = QuerySpecKind::kTopK;
  spec.regions = std::move(regions);
  spec.time = TimeSelector::At(t);
  spec.top_k = k;
  spec.strategy = strategy;
  return spec;
}

Status QuerySpec::Validate(const Hierarchy& hierarchy) const {
  if (regions.empty()) {
    return Status::InvalidArgument("query spec has no regions");
  }
  const bool single_region_shape = kind == QuerySpecKind::kPointInTime ||
                                   kind == QuerySpecKind::kTimeRange;
  if (single_region_shape && regions.size() != 1) {
    return Status::InvalidArgument(
        std::string(QuerySpecKindName(kind)) +
        " spec wants exactly one region, got " +
        std::to_string(regions.size()));
  }
  for (const GridMask& region : regions) {
    if (region.height() != hierarchy.atomic_height() ||
        region.width() != hierarchy.atomic_width()) {
      return Status::InvalidArgument(
          "region extents do not match hierarchy");
    }
    if (region.Empty()) {
      return Status::InvalidArgument("empty region query");
    }
  }
  if (time.t1 < time.t0) {
    return Status::InvalidArgument(
        "time selector is reversed: [" + std::to_string(time.t0) + ", " +
        std::to_string(time.t1) + "]");
  }
  // Unsigned subtraction is well-defined, so this rejects spans whose
  // num_steps() would overflow int64 (e.g. [INT64_MIN, 0]) before any
  // downstream cost arithmetic can wrap negative.
  if (static_cast<uint64_t>(time.t1) - static_cast<uint64_t>(time.t0) >=
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max())) {
    return Status::InvalidArgument("time selector span overflows");
  }
  if (kind == QuerySpecKind::kPointInTime && !time.IsPoint()) {
    return Status::InvalidArgument(
        "point-in-time spec carries a time range");
  }
  if (kind == QuerySpecKind::kTopK && top_k <= 0) {
    return Status::InvalidArgument("top-k spec wants k >= 1");
  }
  return Status::OK();
}

std::string QuerySpec::ToString() const {
  std::ostringstream out;
  out << QuerySpecKindName(kind);
  if (kind == QuerySpecKind::kTopK) out << " k=" << top_k;
  out << " over " << regions.size()
      << (regions.size() == 1 ? " region" : " regions");
  if (kind == QuerySpecKind::kPointBatch) {
    out << " @ per-row timesteps";
  } else if (time.IsPoint()) {
    out << " @ t=" << time.t0;
  } else {
    out << " @ t=" << time.t0 << ".." << time.t1 << " agg="
        << TimeAggregationName(aggregation);
  }
  out << " strategy=" << QueryStrategyName(strategy);
  if (eval_path != EvalPath::kExactCellLoop) {
    out << " eval=" << EvalPathName(eval_path);
  }
  return out.str();
}

}  // namespace one4all
