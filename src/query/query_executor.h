// Runs a compiled QueryPlan against a RegionQueryServer: a cache-probe /
// resolve stage over the plan's distinct regions, an epoch-pinned gather
// stage that reuses each resolution across every timestep it serves, an
// aggregation fold (sum/mean/max) and an optional top-k rank stage. The
// gather stage has two interpreters, selected by the plan's EvalPath:
// the bit-exact per-term cell loop (per-chunk frame memo), and the SAT
// fast path, which prefetches every (layer, t) frame/summed-area plane
// the plan touches once and then answers rect-decomposed term groups
// with four-corner plane reads plus a columnar residue sweep. Per-row
// failures surface as that row's Status; stage wall times land in the
// structured QueryResult.
#ifndef ONE4ALL_QUERY_QUERY_EXECUTOR_H_
#define ONE4ALL_QUERY_QUERY_EXECUTOR_H_

#include <vector>

#include "obs/trace.h"
#include "query/query_planner.h"
#include "query/query_server.h"
#include "query/query_spec.h"

namespace one4all {

/// \brief Execution knobs, mirroring BatchOptions.
struct QueryExecutorOptions {
  /// Worker threads when `pool` is null: 1 runs on the calling thread,
  /// 0 fans out over the process-wide ThreadPool::Shared(), > 1 spins up
  /// a per-call pool.
  int num_threads = 1;
  /// Optional shared pool (overrides num_threads); must outlive the call.
  ThreadPool* pool = nullptr;
  /// Optional resolve cache shared across calls; must outlive the call.
  ResolvedQueryCache* cache = nullptr;
  /// Prediction-store generation every frame read goes through (the
  /// serving runtime pins an epoch and passes its generation here).
  int64_t generation = 0;
  /// Open trace of the enclosing query; stage spans (resolve / gather /
  /// fold / rank) nest under its current parent span. Null traces
  /// nothing. Worker shards span against thread-local copies, so the
  /// pointed-to context itself is only mutated by the calling thread.
  TraceContext* trace = nullptr;
};

/// \brief One result row: the (aggregated) predicted value of one region
/// of the spec, plus the same per-query accounting QueryResponse carries.
struct QueryRow {
  double value = 0.0;
  /// Per-timestep values in ascending t, kept when the spec asked for
  /// keep_series (empty otherwise).
  std::vector<double> series;
  int num_pieces = 0;
  int num_terms = 0;
  bool from_cache = false;
  double decompose_micros = 0.0;
  double index_micros = 0.0;
  double eval_micros = 0.0;
  /// Resolve-path latency in the paper's sense: decompose + index on a
  /// miss, the measured cache-probe time on a hit.
  double response_micros = 0.0;
};

/// \brief Wall time of each executor stage, in microseconds.
struct QueryStageTimings {
  double plan_micros = 0.0;     ///< spec -> plan compilation
  double resolve_micros = 0.0;  ///< cache probe + decompose + index
  double eval_micros = 0.0;     ///< frame gather + aggregation folds
  double rank_micros = 0.0;     ///< top-k ordering (0 unless kTopK)
  double total_micros = 0.0;
};

/// \brief Structured answer to one executed plan.
struct QueryResult {
  QuerySpecKind kind = QuerySpecKind::kPointInTime;
  /// rows[i] answers spec.regions[i] (or legacy batch entry i);
  /// failures do not abort sibling rows.
  std::vector<Result<QueryRow>> rows;
  /// kTopK only: indices into `rows` of the k best OK rows, value
  /// descending (ties broken toward the lower index).
  std::vector<int> top_k;
  QueryStageTimings timings;
  /// Resolve-cache probes made by this execution (0 when no cache).
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
};

/// \brief Interprets QueryPlans. Stateless; cheap to construct per call.
class QueryExecutor {
 public:
  /// \param server Must outlive the executor.
  explicit QueryExecutor(const RegionQueryServer* server);

  /// \brief Runs every stage of `plan`. The result is total: per-row
  /// failures are inside rows[i], never a thrown batch failure.
  QueryResult Execute(const QueryPlan& plan,
                      const QueryExecutorOptions& options = {}) const;

 private:
  const RegionQueryServer* server_;
};

namespace query_internal {

/// \brief The aggregation fold shared by every gather interpreter
/// (exact cell loop, SAT fast path, sharded scatter-gather). Left-to-
/// right accumulation in series order — part of the bit-exactness
/// contract, so no caller may re-fold with a different association.
double FoldSeries(const std::vector<double>& series, TimeAggregation agg);

/// \brief Builds one result row from its gathered series plus the
/// resolution's accounting — the one place every gather interpreter
/// fills row bookkeeping, so the paths cannot diverge when QueryRow
/// grows a field. `cache_hit`/`probe_micros` describe the resolve-cache
/// probe that produced `rq`.
QueryRow MakeQueryRow(const std::vector<double>& series, TimeAggregation agg,
                      bool keep_series, const ResolvedQuery& rq,
                      bool cache_hit, double probe_micros,
                      double eval_micros, TraceContext* trace);

/// \brief Stage 3: top-k rank over `result->rows` (no-op unless the plan
/// is a kTopK spec). Ties break toward the lower row index.
void RankTopK(const QueryPlan& plan, TraceContext* trace,
              QueryResult* result);

}  // namespace query_internal

}  // namespace one4all

#endif  // ONE4ALL_QUERY_QUERY_EXECUTOR_H_
