// Compiles a typed QuerySpec into an executable QueryPlan: which distinct
// regions to resolve (duplicates share one resolve-cache probe), which
// timesteps each result row gathers, and which aggregate/rank stage folds
// the gathered values. The plan is data, not behavior — the QueryExecutor
// (query/query_executor.h) interprets it on the shared thread pool.
#ifndef ONE4ALL_QUERY_QUERY_PLANNER_H_
#define ONE4ALL_QUERY_QUERY_PLANNER_H_

#include <string>
#include <vector>

#include "query/query_server.h"
#include "query/query_spec.h"

namespace one4all {

/// \brief One result row of a plan: evaluate the resolution of
/// `region_slot` at every timestep of the inclusive interval [t0, t1]
/// (ascending), then fold with the spec's aggregation. An interval, not
/// a materialized list, so plan size stays O(rows) however long the
/// range is.
struct PlanRow {
  int region_slot = 0;  ///< index into QueryPlan::slot_regions
  int64_t t0 = 0;
  int64_t t1 = 0;

  int64_t num_steps() const { return t1 - t0 + 1; }
};

/// \brief Executable form of a QuerySpec. rows[i] produces result row i
/// (one per spec region, or one per legacy batch entry).
struct QueryPlan {
  QuerySpec spec;
  /// Term-evaluation path the executor runs. Spec shapes inherit
  /// spec.eval_path; the legacy batch adapter always pins the exact
  /// cell loop (BatchPredict's bit-exact arithmetic is contract).
  EvalPath path = EvalPath::kExactCellLoop;
  /// Distinct regions to resolve, as indices into spec.regions. Spec
  /// shapes dedup identical masks so a grouped query probes the resolve
  /// cache once per distinct region; the legacy batch adapter keeps one
  /// slot per row to preserve the original per-query cache semantics.
  std::vector<int> slot_regions;
  /// kPointBatch only: borrowed views of the caller's query regions, one
  /// per slot — the BatchQuery vector must outlive plan execution (the
  /// shim guarantees this; no mask is copied on the hot batch path).
  /// Empty for spec shapes, which own their regions in spec.regions.
  std::vector<const GridMask*> borrowed_regions;
  std::vector<PlanRow> rows;
  double plan_micros = 0.0;  ///< time spent compiling this plan

  const GridMask& RegionForSlot(int slot) const {
    if (!borrowed_regions.empty()) {
      return *borrowed_regions[static_cast<size_t>(slot)];
    }
    return spec.regions[static_cast<size_t>(
        slot_regions[static_cast<size_t>(slot)])];
  }

  /// \brief Admission-control cost: total (region, t) gather points.
  int64_t num_point_queries() const {
    int64_t n = 0;
    for (const PlanRow& row : rows) n += row.num_steps();
    return n;
  }

  /// \brief Multi-line EXPLAIN-style rendering of the stage pipeline.
  std::string Describe() const;
};

/// \brief Stateless spec -> plan compiler. Validation happens here, so
/// the executor can assume a plan is structurally sound.
class QueryPlanner {
 public:
  /// \param hierarchy Must outlive the planner.
  explicit QueryPlanner(const Hierarchy* hierarchy);

  /// \brief Compiles one of the four client-facing spec shapes.
  Result<QueryPlan> Plan(QuerySpec spec) const;

  /// \brief Legacy adapter: arbitrary (region, t) pairs, one row and one
  /// resolve-cache probe per pair (no dedup — BatchPredict's observable
  /// cache behavior is part of its contract).
  Result<QueryPlan> PlanBatch(const std::vector<BatchQuery>& queries,
                              QueryStrategy strategy) const;

 private:
  const Hierarchy* hierarchy_;
};

}  // namespace one4all

#endif  // ONE4ALL_QUERY_QUERY_PLANNER_H_
