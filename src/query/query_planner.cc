#include "query/query_planner.h"

#include <sstream>
#include <unordered_map>
#include <utility>

#include "core/stopwatch.h"
#include "query/resolved_query_cache.h"

namespace one4all {

std::string QueryPlan::Describe() const {
  std::ostringstream out;
  if (spec.kind == QuerySpecKind::kPointBatch) {
    // Batch plans borrow their regions instead of owning them in the
    // spec, so render from the plan's own shape.
    out << "plan: PointBatch over " << rows.size()
        << (rows.size() == 1 ? " row" : " rows")
        << " @ per-row timesteps strategy="
        << QueryStrategyName(spec.strategy) << "\n";
  } else {
    out << "plan: " << spec.ToString() << "\n";
  }
  out << "  1. cache-probe/resolve: " << slot_regions.size()
      << (slot_regions.size() == 1 ? " distinct region"
                                   : " distinct regions")
      << " (decompose + index retrieval on miss)\n";
  out << "  2. gather: " << rows.size()
      << (rows.size() == 1 ? " row" : " rows") << ", "
      << num_point_queries()
      << (path == EvalPath::kSatFastPath
              ? " epoch-pinned gathers (SAT four-corner plane reads + "
                "columnar residues, frames fetched once per plan)\n"
              : " epoch-pinned frame gathers (per-chunk frame memo)\n");
  if (spec.kind == QuerySpecKind::kTopK) {
    out << "  3. aggregate+rank: " << TimeAggregationName(spec.aggregation)
        << " per row, top-" << spec.top_k << " by value desc\n";
  } else if (spec.kind == QuerySpecKind::kTimeRange) {
    out << "  3. aggregate: " << TimeAggregationName(spec.aggregation)
        << " over " << spec.time.num_steps() << " timesteps\n";
  } else {
    out << "  3. aggregate: identity (point values)\n";
  }
  return out.str();
}

QueryPlanner::QueryPlanner(const Hierarchy* hierarchy)
    : hierarchy_(hierarchy) {
  O4A_CHECK(hierarchy != nullptr);
}

Result<QueryPlan> QueryPlanner::Plan(QuerySpec spec) const {
  Stopwatch timer;
  if (spec.kind == QuerySpecKind::kPointBatch) {
    return Status::InvalidArgument(
        "point-batch plans are built through PlanBatch");
  }
  O4A_RETURN_NOT_OK(spec.Validate(*hierarchy_));

  QueryPlan plan;
  plan.spec = std::move(spec);
  plan.path = plan.spec.eval_path;

  // Dedup identical region masks by content fingerprint so a grouped
  // query resolves (and probes the cache for) each distinct region once.
  std::unordered_map<RegionFingerprint, int, RegionFingerprintHash>
      slot_of;
  slot_of.reserve(plan.spec.regions.size());

  plan.rows.reserve(plan.spec.regions.size());
  for (size_t i = 0; i < plan.spec.regions.size(); ++i) {
    const RegionFingerprint fp =
        FingerprintRegion(plan.spec.regions[i], plan.spec.strategy);
    auto inserted =
        slot_of.emplace(fp, static_cast<int>(plan.slot_regions.size()));
    if (inserted.second) {
      plan.slot_regions.push_back(static_cast<int>(i));
    }
    PlanRow row;
    row.region_slot = inserted.first->second;
    row.t0 = plan.spec.time.t0;
    row.t1 = plan.spec.time.t1;
    plan.rows.push_back(row);
  }
  plan.plan_micros = timer.ElapsedMicros();
  return plan;
}

Result<QueryPlan> QueryPlanner::PlanBatch(
    const std::vector<BatchQuery>& queries, QueryStrategy strategy) const {
  Stopwatch timer;
  QueryPlan plan;
  plan.spec.kind = QuerySpecKind::kPointBatch;
  plan.spec.strategy = strategy;
  // The legacy surface promises bit-exact values; never the SAT path.
  plan.path = EvalPath::kExactCellLoop;
  plan.borrowed_regions.reserve(queries.size());
  plan.slot_regions.reserve(queries.size());
  plan.rows.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    // Regions are borrowed, not copied — the caller's BatchQuery vector
    // outlives the shim's execution, and the hot batch path must not pay
    // a mask copy per query. One slot per row: structural validation and
    // resolution failures stay per-query (surfaced by the executor),
    // matching the legacy BatchPredict contract.
    plan.borrowed_regions.push_back(&queries[i].region);
    plan.slot_regions.push_back(static_cast<int>(i));
    PlanRow row;
    row.region_slot = static_cast<int>(i);
    row.t0 = queries[i].t;
    row.t1 = queries[i].t;
    plan.rows.push_back(row);
  }
  plan.plan_micros = timer.ElapsedMicros();
  return plan;
}

}  // namespace one4all
