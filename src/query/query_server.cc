#include "query/query_server.h"

#include <functional>
#include <map>
#include <utility>

#include "core/stopwatch.h"
#include "core/thread_pool.h"
#include "query/resolved_query_cache.h"
#include "tensor/gemm.h"

namespace one4all {

const char* QueryStrategyName(QueryStrategy strategy) {
  switch (strategy) {
    case QueryStrategy::kDirect: return "Direct";
    case QueryStrategy::kUnion: return "Union";
    case QueryStrategy::kUnionSubtraction: return "Union & Subtraction";
  }
  return "?";
}

Result<ResolvedQuery> RegionQueryServer::Resolve(
    const GridMask& region, QueryStrategy strategy) const {
  if (region.height() != hierarchy_->atomic_height() ||
      region.width() != hierarchy_->atomic_width()) {
    return Status::InvalidArgument("region extents do not match hierarchy");
  }
  if (region.Empty()) {
    return Status::InvalidArgument("empty region query");
  }

  ResolvedQuery resolved;
  Stopwatch timer;
  const std::vector<DecomposedPiece> pieces =
      HierarchicalDecompose(*hierarchy_, region);
  resolved.decompose_micros = timer.ElapsedMicros();
  resolved.num_pieces = static_cast<int>(pieces.size());

  timer.Restart();
  for (const DecomposedPiece& piece : pieces) {
    switch (strategy) {
      case QueryStrategy::kDirect:
        // Each decomposed grid contributes its own prediction.
        for (const GridId& g : piece.grids) {
          resolved.terms.push_back(CombinationTerm{g, 1});
        }
        break;
      case QueryStrategy::kUnion:
        // Single-grid optima from the union DP; multi-grid pieces use the
        // union of their members' optima.
        for (const GridId& g : piece.grids) {
          const Combination* combo = index_->LookupSingle(g);
          O4A_CHECK(combo != nullptr);
          resolved.terms.insert(resolved.terms.end(), combo->terms.begin(),
                                combo->terms.end());
        }
        break;
      case QueryStrategy::kUnionSubtraction: {
        const Combination* combo = nullptr;
        if (piece.IsMultiGrid()) {
          combo = index_->LookupMulti(
              CombinationSearchResult::KeyFor(*hierarchy_, piece.grids));
        } else {
          combo = index_->LookupSingle(piece.grids[0]);
        }
        if (combo != nullptr) {
          resolved.terms.insert(resolved.terms.end(), combo->terms.begin(),
                                combo->terms.end());
        } else {
          // Fallback when the multi-grid was not enumerated (e.g. large
          // windows): union of member singles.
          for (const GridId& g : piece.grids) {
            const Combination* single = index_->LookupSingle(g);
            O4A_CHECK(single != nullptr);
            resolved.terms.insert(resolved.terms.end(),
                                  single->terms.begin(),
                                  single->terms.end());
          }
        }
        break;
      }
    }
  }
  resolved.index_micros = timer.ElapsedMicros();
  return resolved;
}

double RegionQueryServer::EvaluateTerms(
    const std::vector<CombinationTerm>& terms, int64_t t,
    int64_t generation) const {
  auto value = TryEvaluateTerms(terms, t, generation);
  O4A_CHECK(value.ok()) << value.status().ToString();
  return *value;
}

Result<double> RegionQueryServer::TryEvaluateTerms(
    const std::vector<CombinationTerm>& terms, int64_t t,
    int64_t generation) const {
  double value = 0.0;
  for (const CombinationTerm& term : terms) {
    O4A_ASSIGN_OR_RETURN(
        const float predicted,
        store_->TryGetValueAt(generation, term.grid.layer, t, term.grid.row,
                              term.grid.col));
    value += static_cast<double>(term.sign) * predicted;
  }
  return value;
}

Result<QueryResponse> RegionQueryServer::Predict(
    const GridMask& region, int64_t t, QueryStrategy strategy,
    int64_t generation) const {
  O4A_ASSIGN_OR_RETURN(ResolvedQuery resolved, Resolve(region, strategy));
  QueryResponse response;
  O4A_ASSIGN_OR_RETURN(response.value,
                       TryEvaluateTerms(resolved.terms, t, generation));
  response.num_pieces = resolved.num_pieces;
  response.num_terms = static_cast<int>(resolved.terms.size());
  response.decompose_micros = resolved.decompose_micros;
  response.index_micros = resolved.index_micros;
  response.response_micros =
      resolved.decompose_micros + resolved.index_micros;
  return response;
}

Result<std::shared_ptr<const ResolvedQuery>>
RegionQueryServer::ResolveCached(const GridMask& region,
                                 QueryStrategy strategy,
                                 ResolvedQueryCache* cache,
                                 bool* cache_hit) const {
  if (cache_hit != nullptr) *cache_hit = false;
  if (cache == nullptr) {
    O4A_ASSIGN_OR_RETURN(ResolvedQuery resolved, Resolve(region, strategy));
    return std::make_shared<const ResolvedQuery>(std::move(resolved));
  }
  const RegionFingerprint fp = FingerprintRegion(region, strategy);
  if (std::shared_ptr<const ResolvedQuery> hit = cache->Get(fp)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return hit;
  }
  O4A_ASSIGN_OR_RETURN(ResolvedQuery resolved, Resolve(region, strategy));
  auto entry = std::make_shared<const ResolvedQuery>(std::move(resolved));
  cache->Put(fp, entry);
  return entry;
}

namespace {

/// \brief Per-worker memo of prediction frames: one GetFrame per
/// (layer, t) instead of one per combination term.
class FrameMemo {
 public:
  FrameMemo(const PredictionStore* store, int64_t generation)
      : store_(store), generation_(generation) {}

  /// \brief Sums signed term predictions at `t` (same term order as
  /// RegionQueryServer::EvaluateTerms, so values match it exactly).
  Status Evaluate(const std::vector<CombinationTerm>& terms, int64_t t,
                  double* value) {
    double acc = 0.0;
    for (const CombinationTerm& term : terms) {
      const auto key = std::make_pair(term.grid.layer, t);
      auto it = frames_.find(key);
      if (it == frames_.end()) {
        Result<Tensor> frame =
            store_->GetFrameAt(generation_, term.grid.layer, t);
        O4A_RETURN_NOT_OK(frame.status());
        it = frames_.emplace(key, frame.MoveValueUnsafe()).first;
      }
      acc += static_cast<double>(term.sign) *
             it->second.at(term.grid.row, term.grid.col);
    }
    *value = acc;
    return Status::OK();
  }

 private:
  const PredictionStore* store_;
  int64_t generation_;
  std::map<std::pair<int, int64_t>, Tensor> frames_;
};

/// \brief Runs `body(begin, end)` over [0, n) with the requested
/// parallelism; `options.pool` wins over a per-call pool.
void RunSharded(const BatchOptions& options, int64_t n,
                const std::function<void(int64_t, int64_t)>& body) {
  if (options.pool != nullptr) {
    options.pool->ParallelFor(n, body);
  } else if (options.num_threads == 0) {
    // Resolve through the central policy: Shared() by default, sequential
    // when issued from a pool worker (waiting on a pool from one of its
    // own workers would deadlock).
    if (ThreadPool* pool = ResolveComputePool()) {
      pool->ParallelFor(n, body);
    } else {
      body(0, n);
    }
  } else if (options.num_threads > 1) {
    ThreadPool pool(options.num_threads);
    pool.ParallelFor(n, body);
  } else {
    body(0, n);
  }
}

}  // namespace

std::vector<Result<ResolvedQuery>> RegionQueryServer::BatchResolve(
    const std::vector<GridMask>& regions, QueryStrategy strategy,
    const BatchOptions& options) const {
  std::vector<Result<ResolvedQuery>> results(
      regions.size(), Status::Internal("batch entry not evaluated"));
  RunSharded(options, static_cast<int64_t>(regions.size()),
             [&](int64_t begin, int64_t end) {
               for (int64_t i = begin; i < end; ++i) {
                 auto resolved = ResolveCached(
                     regions[static_cast<size_t>(i)], strategy,
                     options.cache);
                 if (resolved.ok()) {
                   results[static_cast<size_t>(i)] = **resolved;
                 } else {
                   results[static_cast<size_t>(i)] = resolved.status();
                 }
               }
             });
  return results;
}

std::vector<Result<QueryResponse>> RegionQueryServer::BatchPredict(
    const std::vector<BatchQuery>& queries, QueryStrategy strategy,
    const BatchOptions& options) const {
  std::vector<Result<QueryResponse>> results(
      queries.size(), Status::Internal("batch entry not evaluated"));
  RunSharded(options, static_cast<int64_t>(queries.size()),
             [&](int64_t begin, int64_t end) {
               FrameMemo memo(store_, options.generation);
               for (int64_t i = begin; i < end; ++i) {
                 const BatchQuery& query = queries[static_cast<size_t>(i)];
                 Stopwatch timer;
                 bool cache_hit = false;
                 auto resolved = ResolveCached(query.region, strategy,
                                               options.cache, &cache_hit);
                 // Captured before evaluation so a hit reports only the
                 // resolve-path latency, comparable to decompose+index.
                 const double resolve_micros = timer.ElapsedMicros();
                 if (!resolved.ok()) {
                   results[static_cast<size_t>(i)] = resolved.status();
                   continue;
                 }
                 const ResolvedQuery& rq = **resolved;
                 QueryResponse response;
                 Status st = memo.Evaluate(rq.terms, query.t,
                                           &response.value);
                 if (!st.ok()) {
                   results[static_cast<size_t>(i)] = std::move(st);
                   continue;
                 }
                 response.num_pieces = rq.num_pieces;
                 response.num_terms = static_cast<int>(rq.terms.size());
                 response.from_cache = cache_hit;
                 if (cache_hit) {
                   // Decompose + index were skipped; report the actual
                   // resolve-path latency (the cache lookup).
                   response.response_micros = resolve_micros;
                 } else {
                   response.decompose_micros = rq.decompose_micros;
                   response.index_micros = rq.index_micros;
                   response.response_micros =
                       rq.decompose_micros + rq.index_micros;
                 }
                 results[static_cast<size_t>(i)] = response;
               }
             });
  return results;
}

}  // namespace one4all
