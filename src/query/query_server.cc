#include "query/query_server.h"

#include "core/stopwatch.h"

namespace one4all {

const char* QueryStrategyName(QueryStrategy strategy) {
  switch (strategy) {
    case QueryStrategy::kDirect: return "Direct";
    case QueryStrategy::kUnion: return "Union";
    case QueryStrategy::kUnionSubtraction: return "Union & Subtraction";
  }
  return "?";
}

Result<ResolvedQuery> RegionQueryServer::Resolve(
    const GridMask& region, QueryStrategy strategy) const {
  if (region.height() != hierarchy_->atomic_height() ||
      region.width() != hierarchy_->atomic_width()) {
    return Status::InvalidArgument("region extents do not match hierarchy");
  }
  if (region.Empty()) {
    return Status::InvalidArgument("empty region query");
  }

  ResolvedQuery resolved;
  Stopwatch timer;
  const std::vector<DecomposedPiece> pieces =
      HierarchicalDecompose(*hierarchy_, region);
  resolved.decompose_micros = timer.ElapsedMicros();
  resolved.num_pieces = static_cast<int>(pieces.size());

  timer.Restart();
  for (const DecomposedPiece& piece : pieces) {
    switch (strategy) {
      case QueryStrategy::kDirect:
        // Each decomposed grid contributes its own prediction.
        for (const GridId& g : piece.grids) {
          resolved.terms.push_back(CombinationTerm{g, 1});
        }
        break;
      case QueryStrategy::kUnion:
        // Single-grid optima from the union DP; multi-grid pieces use the
        // union of their members' optima.
        for (const GridId& g : piece.grids) {
          const Combination* combo = index_->LookupSingle(g);
          O4A_CHECK(combo != nullptr);
          resolved.terms.insert(resolved.terms.end(), combo->terms.begin(),
                                combo->terms.end());
        }
        break;
      case QueryStrategy::kUnionSubtraction: {
        const Combination* combo = nullptr;
        if (piece.IsMultiGrid()) {
          combo = index_->LookupMulti(
              CombinationSearchResult::KeyFor(*hierarchy_, piece.grids));
        } else {
          combo = index_->LookupSingle(piece.grids[0]);
        }
        if (combo != nullptr) {
          resolved.terms.insert(resolved.terms.end(), combo->terms.begin(),
                                combo->terms.end());
        } else {
          // Fallback when the multi-grid was not enumerated (e.g. large
          // windows): union of member singles.
          for (const GridId& g : piece.grids) {
            const Combination* single = index_->LookupSingle(g);
            O4A_CHECK(single != nullptr);
            resolved.terms.insert(resolved.terms.end(),
                                  single->terms.begin(),
                                  single->terms.end());
          }
        }
        break;
      }
    }
  }
  resolved.index_micros = timer.ElapsedMicros();
  return resolved;
}

double RegionQueryServer::EvaluateTerms(
    const std::vector<CombinationTerm>& terms, int64_t t) const {
  double value = 0.0;
  for (const CombinationTerm& term : terms) {
    value += static_cast<double>(term.sign) *
             store_->GetValue(term.grid.layer, t, term.grid.row,
                              term.grid.col);
  }
  return value;
}

Result<QueryResponse> RegionQueryServer::Predict(
    const GridMask& region, int64_t t, QueryStrategy strategy) const {
  O4A_ASSIGN_OR_RETURN(ResolvedQuery resolved, Resolve(region, strategy));
  QueryResponse response;
  response.value = EvaluateTerms(resolved.terms, t);
  response.num_pieces = resolved.num_pieces;
  response.num_terms = static_cast<int>(resolved.terms.size());
  response.decompose_micros = resolved.decompose_micros;
  response.index_micros = resolved.index_micros;
  response.response_micros =
      resolved.decompose_micros + resolved.index_micros;
  return response;
}

}  // namespace one4all
