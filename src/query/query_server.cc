#include "query/query_server.h"

#include <utility>

#include "core/stopwatch.h"
#include "query/frame_memo.h"
#include "query/query_executor.h"
#include "query/query_planner.h"
#include "query/resolved_query_cache.h"

namespace one4all {

Result<ResolvedQuery> RegionQueryServer::Resolve(
    const GridMask& region, QueryStrategy strategy) const {
  if (region.height() != hierarchy_->atomic_height() ||
      region.width() != hierarchy_->atomic_width()) {
    return Status::InvalidArgument("region extents do not match hierarchy");
  }
  if (region.Empty()) {
    return Status::InvalidArgument("empty region query");
  }

  ResolvedQuery resolved;
  Stopwatch timer;
  const std::vector<DecomposedPiece> pieces =
      HierarchicalDecompose(*hierarchy_, region);
  resolved.decompose_micros = timer.ElapsedMicros();
  resolved.num_pieces = static_cast<int>(pieces.size());

  timer.Restart();
  for (const DecomposedPiece& piece : pieces) {
    switch (strategy) {
      case QueryStrategy::kDirect:
        // Each decomposed grid contributes its own prediction.
        for (const GridId& g : piece.grids) {
          resolved.terms.push_back(CombinationTerm{g, 1});
        }
        break;
      case QueryStrategy::kUnion:
        // Single-grid optima from the union DP; multi-grid pieces use the
        // union of their members' optima.
        for (const GridId& g : piece.grids) {
          const Combination* combo = index_->LookupSingle(g);
          O4A_CHECK(combo != nullptr);
          resolved.terms.insert(resolved.terms.end(), combo->terms.begin(),
                                combo->terms.end());
        }
        break;
      case QueryStrategy::kUnionSubtraction: {
        const Combination* combo = nullptr;
        if (piece.IsMultiGrid()) {
          combo = index_->LookupMulti(
              CombinationSearchResult::KeyFor(*hierarchy_, piece.grids));
        } else {
          combo = index_->LookupSingle(piece.grids[0]);
        }
        if (combo != nullptr) {
          resolved.terms.insert(resolved.terms.end(), combo->terms.begin(),
                                combo->terms.end());
        } else {
          // Fallback when the multi-grid was not enumerated (e.g. large
          // windows): union of member singles.
          for (const GridId& g : piece.grids) {
            const Combination* single = index_->LookupSingle(g);
            O4A_CHECK(single != nullptr);
            resolved.terms.insert(resolved.terms.end(),
                                  single->terms.begin(),
                                  single->terms.end());
          }
        }
        break;
      }
    }
  }
  resolved.index_micros = timer.ElapsedMicros();

  timer.Restart();
  resolved.gather = CompileGatherProgram(resolved.terms, *hierarchy_);
  resolved.compile_micros = timer.ElapsedMicros();
  return resolved;
}

double RegionQueryServer::EvaluateTerms(
    const std::vector<CombinationTerm>& terms, int64_t t,
    int64_t generation) const {
  auto value = TryEvaluateTerms(terms, t, generation);
  O4A_CHECK(value.ok()) << value.status().ToString();
  return *value;
}

Result<double> RegionQueryServer::TryEvaluateTerms(
    const std::vector<CombinationTerm>& terms, int64_t t,
    int64_t generation) const {
  double value = 0.0;
  for (const CombinationTerm& term : terms) {
    O4A_ASSIGN_OR_RETURN(
        const float predicted,
        store_->TryGetValueAt(generation, term.grid.layer, t, term.grid.row,
                              term.grid.col));
    value += static_cast<double>(term.sign) * predicted;
  }
  return value;
}

namespace {

/// \brief Adapts one executor row to the legacy per-query response shape.
Result<QueryResponse> RowToResponse(Result<QueryRow>&& row) {
  if (!row.ok()) return row.status();
  QueryRow& r = *row;
  QueryResponse response;
  response.value = r.value;
  response.num_pieces = r.num_pieces;
  response.num_terms = r.num_terms;
  response.decompose_micros = r.decompose_micros;
  response.index_micros = r.index_micros;
  response.eval_micros = r.eval_micros;
  response.response_micros = r.response_micros;
  response.from_cache = r.from_cache;
  return response;
}

}  // namespace

Result<QueryResponse> RegionQueryServer::Predict(
    const GridMask& region, int64_t t, QueryStrategy strategy,
    int64_t generation) const {
  // Thin shim over the composable path: point-in-time spec -> plan ->
  // executor, on the calling thread, no cache.
  QueryPlanner planner(hierarchy_);
  O4A_ASSIGN_OR_RETURN(
      QueryPlan plan,
      planner.Plan(QuerySpec::PointInTime(region, t, strategy)));
  QueryExecutorOptions options;
  options.generation = generation;
  QueryResult executed = QueryExecutor(this).Execute(plan, options);
  return RowToResponse(std::move(executed.rows[0]));
}

Result<std::shared_ptr<const ResolvedQuery>>
RegionQueryServer::ResolveCached(const GridMask& region,
                                 QueryStrategy strategy,
                                 ResolvedQueryCache* cache,
                                 bool* cache_hit) const {
  if (cache_hit != nullptr) *cache_hit = false;
  if (cache == nullptr) {
    O4A_ASSIGN_OR_RETURN(ResolvedQuery resolved, Resolve(region, strategy));
    return std::make_shared<const ResolvedQuery>(std::move(resolved));
  }
  const RegionFingerprint fp = FingerprintRegion(region, strategy);
  if (std::shared_ptr<const ResolvedQuery> hit = cache->Get(fp)) {
    if (cache_hit != nullptr) *cache_hit = true;
    return hit;
  }
  O4A_ASSIGN_OR_RETURN(ResolvedQuery resolved, Resolve(region, strategy));
  auto entry = std::make_shared<const ResolvedQuery>(std::move(resolved));
  cache->Put(fp, entry);
  return entry;
}

std::vector<Result<ResolvedQuery>> RegionQueryServer::BatchResolve(
    const std::vector<GridMask>& regions, QueryStrategy strategy,
    const BatchOptions& options) const {
  std::vector<Result<ResolvedQuery>> results(
      regions.size(), Status::Internal("batch entry not evaluated"));
  query_internal::RunSharded(
      options.pool, options.num_threads,
      static_cast<int64_t>(regions.size()),
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          auto resolved = ResolveCached(regions[static_cast<size_t>(i)],
                                        strategy, options.cache);
          if (resolved.ok()) {
            results[static_cast<size_t>(i)] = **resolved;
          } else {
            results[static_cast<size_t>(i)] = resolved.status();
          }
        }
      });
  return results;
}

std::vector<Result<QueryResponse>> RegionQueryServer::BatchPredict(
    const std::vector<BatchQuery>& queries, QueryStrategy strategy,
    const BatchOptions& options) const {
  // Thin shim over the composable path: the legacy batch adapter keeps
  // one row and one cache probe per (region, t) pair, so the observable
  // cache statistics and per-query failure semantics are unchanged.
  QueryPlanner planner(hierarchy_);
  auto plan = planner.PlanBatch(queries, strategy);
  O4A_CHECK(plan.ok()) << plan.status().ToString();
  QueryExecutorOptions exec_options;
  exec_options.num_threads = options.num_threads;
  exec_options.pool = options.pool;
  exec_options.cache = options.cache;
  exec_options.generation = options.generation;
  QueryResult executed = QueryExecutor(this).Execute(*plan, exec_options);
  std::vector<Result<QueryResponse>> results;
  results.reserve(executed.rows.size());
  for (auto& row : executed.rows) {
    results.push_back(RowToResponse(std::move(row)));
  }
  return results;
}

}  // namespace one4all
