// Typed request model of the composable query API: a QuerySpec describes
// *what* a client wants answered — a region set, a time selector, an
// aggregation and ranking options — independent of *how* it runs. The
// QueryPlanner (query/query_planner.h) compiles a spec into an executable
// plan; the QueryExecutor (query/query_executor.h) runs the plan through
// the resolve-cache / epoch-pin / frame-memoization machinery. The legacy
// Predict/BatchPredict surface survives as thin shims over this path.
#ifndef ONE4ALL_QUERY_QUERY_SPEC_H_
#define ONE4ALL_QUERY_QUERY_SPEC_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "grid/hierarchy.h"
#include "grid/mask.h"

namespace one4all {

/// \brief How a region query's decomposed pieces are turned into
/// prediction terms (Table III's three strategies).
enum class QueryStrategy {
  kDirect,            ///< sum decomposed grids' own predictions
  kUnion,             ///< single-grid optima from the union-only DP
  kUnionSubtraction,  ///< multi-grid optima with subtraction (full system)
};

const char* QueryStrategyName(QueryStrategy strategy);

/// \brief How the executor turns resolved terms into values.
enum class EvalPath {
  /// The PR-4 per-term loop: one signed frame read per combination term,
  /// in term order. Bit-exact with the legacy Predict/BatchPredict
  /// arithmetic — the regression-pinning reference, and the default.
  kExactCellLoop,
  /// The gather engine: rect-decomposable term groups collapse to
  /// four-corner summed-area-plane reads (O(#rects) whatever their
  /// area), irregular residues to a columnar offset sweep, with frames
  /// and planes fetched once per plan. Matches the exact loop to ~1e-9
  /// relative (double prefix-sum rounding), not bit-for-bit; falls back
  /// to frame reads per rect when a generation carries no planes.
  kSatFastPath,
};

const char* EvalPathName(EvalPath path);

/// \brief The question shapes the query layer understands. The first four
/// are the client-facing spec constructors; kPointBatch is the internal
/// shape the legacy BatchPredict surface compiles to (arbitrary
/// (region, t) pairs, one per row).
enum class QuerySpecKind {
  kPointInTime,  ///< one region's value at one timestep (paper semantics)
  kTimeRange,    ///< one region aggregated over [t0, t1]
  kMultiRegion,  ///< many regions at one time selector, one batch
  kTopK,         ///< rank regions by (aggregated) predicted value
  kPointBatch,   ///< legacy adapter: independent (region, t) rows
};

constexpr int kNumQuerySpecKinds = 5;

const char* QuerySpecKindName(QuerySpecKind kind);

/// \brief Inclusive timestep interval [t0, t1]; a point query is t0 == t1.
struct TimeSelector {
  int64_t t0 = 0;
  int64_t t1 = 0;

  static TimeSelector At(int64_t t) { return TimeSelector{t, t}; }
  static TimeSelector Range(int64_t t0, int64_t t1) {
    return TimeSelector{t0, t1};
  }

  bool IsPoint() const { return t0 == t1; }
  int64_t num_steps() const { return t1 - t0 + 1; }
};

/// \brief How per-timestep region values fold across a time range. A
/// point selector makes all three equivalent to the single value.
enum class TimeAggregation {
  kSum,   ///< total over the range
  kMean,  ///< average per timestep
  kMax,   ///< peak timestep value
};

const char* TimeAggregationName(TimeAggregation agg);

/// \brief A fully-typed query request: region set x time selector x
/// aggregation x options. Build through the factory functions; Validate()
/// is what the planner calls before compiling.
struct QuerySpec {
  QuerySpecKind kind = QuerySpecKind::kPointInTime;
  /// The region set. Point/range shapes use exactly one entry; grouped
  /// and top-k shapes any positive number. kPointBatch plans do not own
  /// regions at all — the batch adapter borrows the caller's (see
  /// QueryPlan::borrowed_regions).
  std::vector<GridMask> regions;
  TimeSelector time;
  TimeAggregation aggregation = TimeAggregation::kSum;
  /// kTopK: how many ranked regions to return (clamped to the region
  /// count at execution).
  int top_k = 0;
  QueryStrategy strategy = QueryStrategy::kUnionSubtraction;
  /// Term-evaluation path. The default stays the bit-exact cell loop;
  /// latency-sensitive callers opt into the SAT/columnar fast path.
  EvalPath eval_path = EvalPath::kExactCellLoop;
  /// Keep the per-timestep value series in each result row (range
  /// shapes; costs 8 bytes per step per region).
  bool keep_series = false;

  /// \brief Today's behavior: one region's sum at one timestep.
  static QuerySpec PointInTime(
      GridMask region, int64_t t,
      QueryStrategy strategy = QueryStrategy::kUnionSubtraction);

  /// \brief One region aggregated over [t0, t1], resolving once and
  /// reusing the resolution across every timestep.
  static QuerySpec TimeRange(
      GridMask region, int64_t t0, int64_t t1,
      TimeAggregation aggregation = TimeAggregation::kSum,
      QueryStrategy strategy = QueryStrategy::kUnionSubtraction);

  /// \brief Many regions answered as one batch at timestep `t`
  /// (duplicate regions share one resolve-cache probe).
  static QuerySpec MultiRegion(
      std::vector<GridMask> regions, int64_t t,
      QueryStrategy strategy = QueryStrategy::kUnionSubtraction);

  /// \brief Ranks `regions` by predicted value at `t`, descending;
  /// returns the k best.
  static QuerySpec TopK(
      std::vector<GridMask> regions, int64_t t, int k,
      QueryStrategy strategy = QueryStrategy::kUnionSubtraction);

  /// \brief Structural validation against the serving hierarchy: region
  /// count and extents, time ordering, top-k positivity. Timestep
  /// existence is not checked here — frame availability is an execution-
  /// time property of the pinned epoch.
  Status Validate(const Hierarchy& hierarchy) const;

  /// \brief One-line human-readable description ("TopK k=3 over 12
  /// regions @ t=96..111 agg=max strategy=Union & Subtraction").
  std::string ToString() const;
};

}  // namespace one4all

#endif  // ONE4ALL_QUERY_QUERY_SPEC_H_
