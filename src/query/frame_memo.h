// Internal execution helpers shared by the legacy batch surface and the
// QueryExecutor: the per-worker prediction-frame memo and the sharded
// parallel-for policy. Kept in one place so the composable query path
// evaluates terms with byte-identical arithmetic to the original
// BatchPredict (same frame reads, same accumulation order).
#ifndef ONE4ALL_QUERY_FRAME_MEMO_H_
#define ONE4ALL_QUERY_FRAME_MEMO_H_

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "core/thread_pool.h"
#include "kvstore/prediction_store.h"
#include "query/query_server.h"
#include "tensor/gemm.h"

namespace one4all {
namespace query_internal {

/// \brief Per-worker memo of prediction frames: one GetFrame per
/// (layer, t) instead of one per combination term.
///
/// A flat key-sorted vector, not a map: the memo holds a handful of
/// frames (layers x timesteps of one worker chunk), so binary search
/// over contiguous keys beats pointer-chasing map nodes, and inserting
/// shifts only cheap moved Tensors — the node churn used to show up in
/// the gather stage timings.
class FrameMemo {
 public:
  FrameMemo(const PredictionStore* store, int64_t generation)
      : store_(store), generation_(generation) {}

  /// \brief Sums signed term predictions at `t` (same term order as
  /// RegionQueryServer::EvaluateTerms, so values match it exactly).
  Status Evaluate(const std::vector<CombinationTerm>& terms, int64_t t,
                  double* value) {
    double acc = 0.0;
    for (const CombinationTerm& term : terms) {
      const Key key{term.grid.layer, t};
      auto it = std::lower_bound(frames_.begin(), frames_.end(), key,
                                 [](const Entry& e, const Key& k) {
                                   return e.first < k;
                                 });
      if (it == frames_.end() || it->first != key) {
        Result<Tensor> frame =
            store_->GetFrameAt(generation_, term.grid.layer, t);
        O4A_RETURN_NOT_OK(frame.status());
        it = frames_.insert(it,
                            Entry{key, frame.MoveValueUnsafe()});
      }
      acc += static_cast<double>(term.sign) *
             it->second.at(term.grid.row, term.grid.col);
    }
    *value = acc;
    return Status::OK();
  }

 private:
  using Key = std::pair<int, int64_t>;
  using Entry = std::pair<Key, Tensor>;

  const PredictionStore* store_;
  int64_t generation_;
  std::vector<Entry> frames_;  ///< key-ascending
};

/// \brief Runs `body(begin, end)` over [0, n) with the requested
/// parallelism; `pool` wins over `num_threads` (BatchOptions semantics:
/// 0 = ambient/shared pool, 1 = caller's thread, > 1 = per-call pool).
inline void RunSharded(ThreadPool* pool, int num_threads, int64_t n,
                       const std::function<void(int64_t, int64_t)>& body) {
  if (pool != nullptr) {
    pool->ParallelFor(n, body);
  } else if (num_threads == 0) {
    // Resolve through the central policy: Shared() by default, sequential
    // when issued from a pool worker (waiting on a pool from one of its
    // own workers would deadlock).
    if (ThreadPool* ambient = ResolveComputePool()) {
      ambient->ParallelFor(n, body);
    } else {
      body(0, n);
    }
  } else if (num_threads > 1) {
    ThreadPool local(num_threads);
    local.ParallelFor(n, body);
  } else {
    body(0, n);
  }
}

}  // namespace query_internal
}  // namespace one4all

#endif  // ONE4ALL_QUERY_FRAME_MEMO_H_
