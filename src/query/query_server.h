// Online modifiable-areal-unit prediction (paper Sec. III / IV-D): the
// region decomposition server splits a region query into hierarchical
// grids (Algorithm 1), retrieves each piece's optimal combination from the
// extended quad-tree, and aggregates predicted values from the prediction
// store. Response time = decomposition + index retrieval, as in Fig. 15.
#ifndef ONE4ALL_QUERY_QUERY_SERVER_H_
#define ONE4ALL_QUERY_QUERY_SERVER_H_

#include <vector>

#include "combine/combination.h"
#include "grid/decompose.h"
#include "index/quadtree.h"
#include "kvstore/prediction_store.h"

namespace one4all {

/// \brief How a region query's decomposed pieces are turned into
/// prediction terms (Table III's three strategies).
enum class QueryStrategy {
  kDirect,            ///< sum decomposed grids' own predictions
  kUnion,             ///< single-grid optima from the union-only DP
  kUnionSubtraction,  ///< multi-grid optima with subtraction (full system)
};

const char* QueryStrategyName(QueryStrategy strategy);

/// \brief A region query resolved to signed grid terms (time-independent).
struct ResolvedQuery {
  std::vector<CombinationTerm> terms;
  int num_pieces = 0;
  double decompose_micros = 0.0;
  double index_micros = 0.0;
};

/// \brief Answer to one (region, time) prediction query.
struct QueryResponse {
  double value = 0.0;
  int num_pieces = 0;
  int num_terms = 0;
  double decompose_micros = 0.0;
  double index_micros = 0.0;
  /// Response time in the paper's sense (decompose + index).
  double response_micros = 0.0;
};

/// \brief The online serving component.
class RegionQueryServer {
 public:
  /// \param hierarchy,index,store Must outlive the server.
  RegionQueryServer(const Hierarchy* hierarchy,
                    const ExtendedQuadTree* index,
                    const PredictionStore* store)
      : hierarchy_(hierarchy), index_(index), store_(store) {
    O4A_CHECK(hierarchy != nullptr);
    O4A_CHECK(index != nullptr);
    O4A_CHECK(store != nullptr);
  }

  /// \brief Decomposes the region and resolves combination terms without
  /// touching prediction data (reusable across time slots).
  Result<ResolvedQuery> Resolve(const GridMask& region,
                                QueryStrategy strategy) const;

  /// \brief Sums predicted values of resolved terms at time `t`.
  double EvaluateTerms(const std::vector<CombinationTerm>& terms,
                       int64_t t) const;

  /// \brief Full query: resolve + evaluate at `t`.
  Result<QueryResponse> Predict(const GridMask& region, int64_t t,
                                QueryStrategy strategy) const;

 private:
  const Hierarchy* hierarchy_;
  const ExtendedQuadTree* index_;
  const PredictionStore* store_;
};

}  // namespace one4all

#endif  // ONE4ALL_QUERY_QUERY_SERVER_H_
