// Online modifiable-areal-unit prediction (paper Sec. III / IV-D): the
// region decomposition server splits a region query into hierarchical
// grids (Algorithm 1), retrieves each piece's optimal combination from the
// extended quad-tree, and aggregates predicted values from the prediction
// store. Response time = decomposition + index retrieval, as in Fig. 15.
#ifndef ONE4ALL_QUERY_QUERY_SERVER_H_
#define ONE4ALL_QUERY_QUERY_SERVER_H_

#include <memory>
#include <vector>

#include "combine/combination.h"
#include "grid/decompose.h"
#include "index/quadtree.h"
#include "kvstore/prediction_store.h"
#include "query/gather_program.h"
#include "query/query_spec.h"

namespace one4all {

class ResolvedQueryCache;  // query/resolved_query_cache.h
class ThreadPool;          // core/thread_pool.h

/// \brief A region query resolved to signed grid terms (time-independent).
struct ResolvedQuery {
  std::vector<CombinationTerm> terms;
  /// Compiled gather form of `terms` (SAT rect reads + columnar
  /// residues), built once at resolve time so cache hits reuse the
  /// compilation along with the resolution. The executor's
  /// EvalPath::kSatFastPath interprets it; the exact cell loop ignores
  /// it.
  GatherProgram gather;
  int num_pieces = 0;
  double decompose_micros = 0.0;
  double index_micros = 0.0;
  /// Time compiling `gather` (not part of the paper-sense response
  /// time, which counts decomposition + index retrieval only).
  double compile_micros = 0.0;
};

/// \brief Answer to one (region, time) prediction query.
struct QueryResponse {
  double value = 0.0;
  int num_pieces = 0;
  int num_terms = 0;
  double decompose_micros = 0.0;
  double index_micros = 0.0;
  /// Time spent summing prediction terms out of the store (frame reads
  /// included). Not part of response_micros — the paper's response time
  /// counts decomposition + index retrieval only.
  double eval_micros = 0.0;
  /// Response time in the paper's sense (decompose + index).
  double response_micros = 0.0;
  /// True when the resolution came from a ResolvedQueryCache hit (the
  /// decompose/index work was skipped; their timings are zero).
  bool from_cache = false;
};

/// \brief One (region, time) query of a batch.
struct BatchQuery {
  GridMask region;
  int64_t t = 0;
};

/// \brief Execution knobs for BatchPredict / BatchResolve.
struct BatchOptions {
  /// Worker threads when `pool` is null: 1 runs on the calling thread,
  /// 0 fans out over the process-wide ThreadPool::Shared() (the same
  /// worker set the tensor kernels use), > 1 spins up a per-call pool.
  int num_threads = 1;
  /// Optional shared pool (overrides num_threads); must outlive the call.
  ThreadPool* pool = nullptr;
  /// Optional resolve cache shared across calls; must outlive the call.
  ResolvedQueryCache* cache = nullptr;
  /// Prediction-store generation every frame read of the batch goes
  /// through. The serving runtime pins an epoch (serve/epoch_manager.h)
  /// for the duration of the batch and passes its generation here, so
  /// the whole batch observes one consistent frame set. 0 is the static
  /// generation the offline harness syncs into.
  int64_t generation = 0;
};

/// \brief The online serving component.
///
/// Resolve / EvaluateTerms are the primitive operations; the composable
/// query path (query/query_spec.h -> query/query_planner.h ->
/// query/query_executor.h) builds every question shape out of them.
/// Predict and BatchPredict are kept as thin shims over that path — same
/// results bit-for-bit, same per-query failure semantics.
class RegionQueryServer {
 public:
  /// \param hierarchy,index,store Must outlive the server.
  RegionQueryServer(const Hierarchy* hierarchy,
                    const ExtendedQuadTree* index,
                    const PredictionStore* store)
      : hierarchy_(hierarchy), index_(index), store_(store) {
    O4A_CHECK(hierarchy != nullptr);
    O4A_CHECK(index != nullptr);
    O4A_CHECK(store != nullptr);
  }

  const Hierarchy* hierarchy() const { return hierarchy_; }
  const ExtendedQuadTree* index() const { return index_; }
  const PredictionStore* store() const { return store_; }

  /// \brief Decomposes the region and resolves combination terms without
  /// touching prediction data (reusable across time slots).
  Result<ResolvedQuery> Resolve(const GridMask& region,
                                QueryStrategy strategy) const;

  /// \brief Sums predicted values of resolved terms at time `t`, reading
  /// frames of `generation`. Dies when a frame is missing — offline
  /// harness convenience; the serving path uses TryEvaluateTerms.
  double EvaluateTerms(const std::vector<CombinationTerm>& terms, int64_t t,
                       int64_t generation = 0) const;

  /// \brief Non-fatal EvaluateTerms: a missing frame (e.g. a query racing
  /// ahead of a late-arriving epoch) returns NotFound instead of aborting
  /// the process.
  Result<double> TryEvaluateTerms(const std::vector<CombinationTerm>& terms,
                                  int64_t t, int64_t generation = 0) const;

  /// \brief Full query: resolve + evaluate at `t` against `generation`.
  Result<QueryResponse> Predict(const GridMask& region, int64_t t,
                                QueryStrategy strategy,
                                int64_t generation = 0) const;

  /// \brief Resolve with an optional cache: hits skip decomposition and
  /// index retrieval entirely. With `cache == nullptr` this is a plain
  /// Resolve wrapped in a shared_ptr. `cache_hit` (optional) reports
  /// whether the resolution came from the cache.
  Result<std::shared_ptr<const ResolvedQuery>> ResolveCached(
      const GridMask& region, QueryStrategy strategy,
      ResolvedQueryCache* cache, bool* cache_hit = nullptr) const;

  /// \brief Resolves many regions, fanned out across `options` threads.
  /// results[i] corresponds to regions[i]; per-query failures do not
  /// abort the batch.
  std::vector<Result<ResolvedQuery>> BatchResolve(
      const std::vector<GridMask>& regions, QueryStrategy strategy,
      const BatchOptions& options = {}) const;

  /// \brief Answers many (region, t) queries concurrently. Beyond the
  /// fan-out, each worker chunk memoizes prediction frames per
  /// (layer, t), so a frame is deserialized at most once per chunk (a
  /// few chunks per worker) instead of once per combination term.
  /// results[i] corresponds to queries[i].
  std::vector<Result<QueryResponse>> BatchPredict(
      const std::vector<BatchQuery>& queries, QueryStrategy strategy,
      const BatchOptions& options = {}) const;

 private:
  const Hierarchy* hierarchy_;
  const ExtendedQuadTree* index_;
  const PredictionStore* store_;
};

}  // namespace one4all

#endif  // ONE4ALL_QUERY_QUERY_SERVER_H_
