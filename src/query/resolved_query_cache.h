// Sharded LRU cache of resolved region queries. Resolving a region
// (decomposition + quad-tree retrieval) is time-independent, so production
// traffic that re-queries the same areal units across time slots can skip
// both steps entirely: the cache maps a region-mask fingerprint (plus the
// query strategy) to the signed combination terms.
#ifndef ONE4ALL_QUERY_RESOLVED_QUERY_CACHE_H_
#define ONE4ALL_QUERY_RESOLVED_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "grid/mask.h"
#include "query/query_server.h"

namespace one4all {

/// \brief 128-bit content fingerprint of a (region mask, strategy) pair.
///
/// Two independent 64-bit mixes over the mask cells; the probability of a
/// collision across realistic cache populations is negligible.
struct RegionFingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const RegionFingerprint& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

RegionFingerprint FingerprintRegion(const GridMask& region,
                                    QueryStrategy strategy);

/// \brief Hash functor for RegionFingerprint keys — shared by the cache
/// shards and the query planner's region-dedup map.
struct RegionFingerprintHash {
  size_t operator()(const RegionFingerprint& k) const {
    return static_cast<size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ull));
  }
};

struct ResolvedQueryCacheOptions {
  size_t capacity = 4096;  ///< total entries across all shards
  int num_shards = 8;      ///< clamped to >= 1
};

/// \brief Monotonic counters; `size` is the instantaneous entry count.
struct ResolvedQueryCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t invalidations = 0;  ///< full clears via Invalidate()
  size_t size = 0;

  /// \brief Fraction of lookups served from the cache. Guarded: an idle
  /// runtime (zero lookups) reports 0.0, never a divide-by-zero NaN.
  double hit_rate() const {
    const int64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// \brief Thread-safe LRU keyed by RegionFingerprint, sharded to keep
/// lock contention off the hot path. Values are shared_ptr so a hit never
/// copies the term list and eviction cannot invalidate in-flight readers.
class ResolvedQueryCache {
 public:
  explicit ResolvedQueryCache(ResolvedQueryCacheOptions options = {});

  ResolvedQueryCache(const ResolvedQueryCache&) = delete;
  ResolvedQueryCache& operator=(const ResolvedQueryCache&) = delete;

  /// \brief Returns the cached resolution or nullptr; counts hit/miss and
  /// refreshes recency on hit.
  std::shared_ptr<const ResolvedQuery> Get(const RegionFingerprint& key);

  /// \brief Inserts or refreshes; evicts the least-recent entry of the
  /// key's shard when that shard is full.
  void Put(const RegionFingerprint& key,
           std::shared_ptr<const ResolvedQuery> value);

  ResolvedQueryCacheStats Stats() const;
  size_t Size() const;
  size_t capacity() const { return capacity_; }
  void Clear();

  /// \brief Full clear for topology changes: resolutions depend only on
  /// the hierarchy and quad-tree index, so the serving runtime calls this
  /// when the index is swapped. Epoch rolls are time-only and must NOT
  /// invalidate (resolution is time-independent). Counted in
  /// Stats().invalidations.
  void Invalidate();

  /// \brief Zeroes the hit/miss/eviction/invalidation counters while
  /// keeping every cached entry — bench warmup isolation: warm the cache,
  /// reset the stats, then measure the steady state alone.
  void ResetStats();

 private:
  using LruList = std::list<
      std::pair<RegionFingerprint, std::shared_ptr<const ResolvedQuery>>>;
  struct Shard {
    std::mutex mu;
    LruList lru;  ///< front = most recently used
    std::unordered_map<RegionFingerprint, LruList::iterator,
                       RegionFingerprintHash>
        map;
  };

  Shard& ShardFor(const RegionFingerprint& key) {
    return *shards_[static_cast<size_t>(key.hi % shards_.size())];
  }

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> invalidations_{0};
};

}  // namespace one4all

#endif  // ONE4ALL_QUERY_RESOLVED_QUERY_CACHE_H_
