// Metrics primitives and the named-metric registry: lock-free counters,
// gauges and log-bucketed latency histograms, registered under
// Prometheus-style names (with optional label sets) and exportable as
// Prometheus text exposition or a JSON dump. ServingTelemetry keeps its
// struct-of-atomics shape by building its members from these types and
// registering them here, so both the legacy snapshot API and the named
// exposition read the same underlying atomics.
#ifndef ONE4ALL_OBS_METRICS_H_
#define ONE4ALL_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"

namespace one4all {

/// \brief Monotonic counter. API mirrors std::atomic<int64_t> so code
/// written against the raw-atomic telemetry members (fetch_add/load/
/// store) keeps compiling unchanged.
class Counter {
 public:
  int64_t fetch_add(int64_t delta,
                    std::memory_order order = std::memory_order_relaxed) {
    return value_.fetch_add(delta, order);
  }
  int64_t load(std::memory_order order = std::memory_order_relaxed) const {
    return value_.load(order);
  }
  void store(int64_t value,
             std::memory_order order = std::memory_order_relaxed) {
    value_.store(value, order);
  }
  int64_t value() const { return load(); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Instantaneous value (can go down). Double-valued so callback
/// gauges and derived rates share one exposition path.
class Gauge {
 public:
  void Set(double value) {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Lock-free latency histogram over geometric microsecond buckets
/// (factor ~1.19 per bucket, ~0.5 us .. ~70 s span) plus min/max gauges.
/// Percentiles are read from a snapshot of the bucket counters, so
/// Record() stays a handful of relaxed atomic ops on the serving hot
/// path. Non-finite or negative samples are recorded as 0 (bucket 0)
/// rather than poisoning the totals.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 104;

  void Record(double micros);

  /// \brief Upper bound (micros) of the bucket holding quantile `q` in
  /// [0, 1], clamped into [MinMicros, MaxMicros] so reported quantiles
  /// never exceed the largest observed sample; 0 when nothing was
  /// recorded.
  double PercentileMicros(double q) const;

  int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double total_micros() const;
  double MeanMicros() const;
  /// \brief Smallest recorded sample (micros); 0 when empty.
  double MinMicros() const;
  /// \brief Largest recorded sample (micros); 0 when empty.
  double MaxMicros() const;

  void Reset();

 private:
  static int BucketFor(double micros);
  static double BucketUpperMicros(int bucket);

  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  // Accumulated in integer nanoseconds so the total stays a lock-free
  // fetch_add (no atomic<double> needed). Min/max use the same unit and
  // relaxed CAS loops; max_nanos_ == -1 marks the empty histogram.
  std::atomic<int64_t> total_nanos_{0};
  std::atomic<int64_t> min_nanos_{std::numeric_limits<int64_t>::max()};
  std::atomic<int64_t> max_nanos_{-1};
};

/// \brief Named-metric registry. Metrics either live elsewhere and are
/// registered by pointer (ServingTelemetry members), are owned here
/// (AddCounter/AddGauge/AddHistogram), or are computed at scrape time
/// (RegisterCallbackGauge). Registration takes a short lock; scraping
/// reads the live atomics, so it can run concurrently with the hot path.
///
/// Exposition: counters render as `<name>_total`, gauges as `<name>`,
/// histograms as a Prometheus summary (`quantile` labels + _sum/_count)
/// plus `<name>_min`/`<name>_max` gauges. Entries sharing a base name
/// (label variants) share one HELP/TYPE header.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \param labels Raw Prometheus label body without braces, e.g.
  /// `kind="TopK"`; empty for no labels. Applies to every Register*/Add*.
  Counter* AddCounter(const std::string& name, const std::string& help,
                      const std::string& labels = "");
  Gauge* AddGauge(const std::string& name, const std::string& help,
                  const std::string& labels = "");
  LatencyHistogram* AddHistogram(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels = "");

  void RegisterCounter(const std::string& name, const std::string& help,
                       const std::string& labels, const Counter* counter);
  void RegisterGauge(const std::string& name, const std::string& help,
                     const std::string& labels, const Gauge* gauge);
  void RegisterHistogram(const std::string& name, const std::string& help,
                         const std::string& labels,
                         const LatencyHistogram* histogram);
  /// \brief Gauge whose value is computed at scrape time; `fn` must stay
  /// callable for the registry's lifetime and be thread-safe.
  void RegisterCallbackGauge(const std::string& name,
                             const std::string& help,
                             const std::string& labels,
                             std::function<double()> fn);

  /// \brief Prometheus text exposition (format 0.0.4).
  std::string ExpositionText() const;
  /// \brief JSON object keyed by metric name (label variants become
  /// `name{labels}` keys); histograms expand to count/sum/min/max/
  /// quantile fields.
  std::string JsonText() const;

  size_t num_metrics() const;

  /// \brief Structural validation of Prometheus text exposition: every
  /// non-comment line must be `name[{labels}] value`, every sample must
  /// be preceded by a TYPE for its metric family, label braces/quotes
  /// must balance and values must parse as floats. Used by tests and the
  /// CI scrape smoke.
  static Status ValidateExposition(const std::string& text);

 private:
  struct Entry {
    enum class Type { kCounter, kGauge, kCallbackGauge, kHistogram };
    Type type;
    std::string name;
    std::string help;
    std::string labels;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const LatencyHistogram* histogram = nullptr;
    std::function<double()> callback;
  };

  void Register(Entry entry);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;  ///< registration order == render order
  std::vector<std::unique_ptr<Counter>> owned_counters_;
  std::vector<std::unique_ptr<Gauge>> owned_gauges_;
  std::vector<std::unique_ptr<LatencyHistogram>> owned_histograms_;
};

}  // namespace one4all

#endif  // ONE4ALL_OBS_METRICS_H_
