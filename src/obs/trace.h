// Span tracing for the serving runtime: a TraceContext per query (or per
// epoch publish attempt) plus RAII ScopedSpans that record completed
// stage spans into a TraceRecorder's event ring. Root spans are always
// recorded while the recorder is enabled (cheap: one clock read at open,
// one clock read + ring append at close); interior stage spans are only
// materialized for head-sampled traces (1-in-N), so full span trees are
// available without paying per-stage clock costs on every query.
#ifndef ONE4ALL_OBS_TRACE_H_
#define ONE4ALL_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/event_ring.h"

namespace one4all {

/// \brief Every span the runtime emits, query-path then epoch-path.
/// Append-only: exporters key on the numeric value.
enum class SpanName : uint8_t {
  kQuery = 0,      ///< root: one ExecuteSpec/QueryBatch call (arg: rows)
  kAdmission = 1,  ///< admission-control gate (arg: admitted cost)
  kPlan = 2,       ///< QueryPlanner::Plan
  kCacheProbe = 3, ///< per-slot cache probe + resolve (arg: 1 on hit)
  kResolve = 4,    ///< resolve stage across all slots (arg: #slots)
  kEpochPin = 5,   ///< epoch pin acquisition (arg: pinned generation)
  kGather = 6,     ///< gather stage, SAT or exact (arg: #point queries)
  kFold = 7,       ///< per-row series fold (arg: series length)
  kRank = 8,       ///< top-k ranking
  kPublishEpoch = 9,   ///< root: one publish attempt (arg: timestep)
  kInfer = 10,         ///< multi-scale inference (arg: timestep)
  kStageFrames = 11,   ///< staging all layer frames (arg: #frames)
  kBuildSatPlane = 12, ///< one SAT plane build (arg: layer)
  kPublish = 13,       ///< atomic epoch flip
  kReclaim = 14,       ///< root: one generation reclaim (arg: generation)
  kShardScatter = 15,  ///< per-shard term evaluation fan-out (arg: #terms)
  kShardGather = 16,   ///< cross-shard merge + canonical fold (arg: #rows)
  kBarrierWait = 17,   ///< cross-shard epoch pin, incl. seqlock retries
  kTileSatFixup = 18,  ///< incremental tiled-SAT rebuild (arg: dirty tiles)
};
constexpr int kNumSpanNames = 19;

const char* SpanNameString(SpanName name);

enum class SpanCategory : uint8_t {
  kQuery = 0,
  kEpoch = 1,
};

const char* SpanCategoryString(SpanCategory category);

struct TraceRecorderOptions {
  size_t ring_capacity = size_t{1} << 14;
  /// Head sampling period: 1 full span tree per N traces (roots are
  /// always recorded). <= 1 samples every trace.
  int sample_every_n = 16;
  bool enabled = true;
};

class TraceRecorder;

/// \brief Per-trace state threaded through one query (or publish
/// attempt). Copy-by-value to hand a worker thread its own context:
/// ScopedSpan mutates `parent_span`, so two threads must never open
/// spans on the same TraceContext instance concurrently.
struct TraceContext {
  TraceRecorder* recorder = nullptr;  ///< null: tracing off for this call
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;  ///< innermost open span; 0 at the root
  SpanCategory category = SpanCategory::kQuery;
  bool sampled = false;  ///< full tree (true) vs root-only (false)

  bool active() const { return recorder != nullptr; }
};

/// \brief Owns the event ring, id allocation, the head sampler and the
/// trace clock. Thread-safe throughout; one instance is typically shared
/// by a whole runtime (TraceRecorder::Global() when none is injected).
class TraceRecorder {
 public:
  explicit TraceRecorder(TraceRecorderOptions options = {});

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// \brief Opens a new trace: allocates a trace id and decides head
  /// sampling. Returns an inactive context while disabled, so the hot
  /// path pays one relaxed load and nothing else.
  TraceContext StartTrace(SpanCategory category);

  void Record(const TraceEvent& event) { ring_.Append(event); }

  uint64_t NewSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// \brief Nanoseconds since this recorder was constructed.
  uint64_t NowNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - birth_)
            .count());
  }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  int sample_every_n() const {
    return sample_every_n_.load(std::memory_order_relaxed);
  }
  void set_sample_every_n(int n) {
    sample_every_n_.store(n, std::memory_order_relaxed);
  }

  std::vector<TraceEvent> Snapshot() const { return ring_.Snapshot(); }
  int64_t total_events() const { return ring_.total_appended(); }
  int64_t dropped_events() const { return ring_.dropped_total(); }
  size_t ring_capacity() const { return ring_.capacity(); }

  /// \brief Clears the ring and drop counters (ids keep advancing).
  /// Quiescent-only, same contract as TraceEventRing::Reset.
  void Reset() { ring_.Reset(); }

  /// \brief Process-wide default recorder, used when no recorder is
  /// injected through options structs.
  static TraceRecorder& Global();

  /// \brief Small dense id for the calling thread (first use assigns).
  static uint32_t CurrentThreadId();

 private:
  TraceEventRing ring_;
  std::atomic<bool> enabled_;
  std::atomic<int> sample_every_n_;
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<uint64_t> head_counter_{0};
  std::chrono::steady_clock::time_point birth_;
};

/// \brief RAII span: opens on construction, records a TraceEvent on
/// destruction. Becomes a no-op (no clock reads) when the context is
/// inactive, or when this would be an interior span of an unsampled
/// trace — so always-on tracing costs one root span per query.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* ctx, SpanName name, int64_t arg = 0);
  ~ScopedSpan() { Close(); }

  /// \brief Ends the span now (records the event, restores the parent);
  /// the destructor then does nothing. For spans that must end before
  /// the enclosing scope does.
  void Close();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// \brief Updates the detail argument after construction (e.g. the
  /// pinned generation is only known once the span is open).
  void set_arg(int64_t arg) { arg_ = arg; }

  bool recording() const { return ctx_ != nullptr; }
  uint64_t span_id() const { return span_id_; }

 private:
  TraceContext* ctx_ = nullptr;  ///< null: this span records nothing
  uint64_t span_id_ = 0;
  uint64_t saved_parent_ = 0;
  uint64_t start_nanos_ = 0;
  int64_t arg_ = 0;
  SpanName name_;
};

}  // namespace one4all

#endif  // ONE4ALL_OBS_TRACE_H_
