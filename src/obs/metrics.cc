#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace one4all {

namespace {
// Geometric bucket layout: bucket b covers (kBase*kFactor^b, next].
constexpr double kBaseMicros = 0.5;
constexpr double kFactor = 1.19;
const double kInvLogFactor = 1.0 / std::log(kFactor);

/// Prometheus sample value: integers render without a fraction so
/// counter goldens stay stable; everything else uses %.6g. Non-finite
/// values use the spec spellings NaN/+Inf/-Inf.
std::string FormatValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  if (value == std::floor(value) && std::abs(value) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string SampleName(const std::string& name, const std::string& labels,
                       const std::string& extra_label = "") {
  std::string out = name;
  std::string body = labels;
  if (!extra_label.empty()) {
    if (!body.empty()) body += ",";
    body += extra_label;
  }
  if (!body.empty()) out += "{" + body + "}";
  return out;
}

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 8);
  for (char c : raw) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else {
      out += c;
    }
  }
  return out;
}

bool ValidMetricNameChar(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}
}  // namespace

int LatencyHistogram::BucketFor(double micros) {
  if (!(micros > kBaseMicros)) return 0;
  const int bucket =
      static_cast<int>(std::log(micros / kBaseMicros) * kInvLogFactor) + 1;
  return std::min(bucket, kNumBuckets - 1);
}

double LatencyHistogram::BucketUpperMicros(int bucket) {
  return kBaseMicros * std::pow(kFactor, bucket);
}

void LatencyHistogram::Record(double micros) {
  // NaN/Inf/negative samples (a stopwatch glitch, a bad upstream
  // division) must not poison the totals: std::max(NaN, 0.0) keeps the
  // NaN and casting it to int64 is UB, so sanitize to 0 explicitly.
  if (!std::isfinite(micros) || micros < 0.0) micros = 0.0;
  buckets_[static_cast<size_t>(BucketFor(micros))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const int64_t nanos = static_cast<int64_t>(micros * 1e3);
  total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  int64_t seen = min_nanos_.load(std::memory_order_relaxed);
  while (nanos < seen && !min_nanos_.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed)) {
  }
  seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen && !max_nanos_.compare_exchange_weak(
                             seen, nanos, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::PercentileMicros(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  std::array<int64_t, kNumBuckets> snapshot;
  int64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    snapshot[static_cast<size_t>(b)] =
        buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    total += snapshot[static_cast<size_t>(b)];
  }
  if (total == 0) return 0.0;
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(total))));
  double estimate = BucketUpperMicros(kNumBuckets - 1);
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += snapshot[static_cast<size_t>(b)];
    if (seen >= rank) {
      estimate = BucketUpperMicros(b);
      break;
    }
  }
  // A bucket's upper bound can overshoot the largest real sample (one
  // 100us sample reports p99 ~103us otherwise); clamp into the observed
  // range so p50 <= p99 <= max always holds for operators.
  return std::min(std::max(estimate, MinMicros()), MaxMicros());
}

double LatencyHistogram::total_micros() const {
  return static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) /
         1e3;
}

double LatencyHistogram::MeanMicros() const {
  const int64_t n = count();
  return n == 0 ? 0.0 : total_micros() / static_cast<double>(n);
}

double LatencyHistogram::MinMicros() const {
  if (max_nanos_.load(std::memory_order_relaxed) < 0) return 0.0;
  return static_cast<double>(min_nanos_.load(std::memory_order_relaxed)) /
         1e3;
}

double LatencyHistogram::MaxMicros() const {
  const int64_t nanos = max_nanos_.load(std::memory_order_relaxed);
  return nanos < 0 ? 0.0 : static_cast<double>(nanos) / 1e3;
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_nanos_.store(0, std::memory_order_relaxed);
  min_nanos_.store(std::numeric_limits<int64_t>::max(),
                   std::memory_order_relaxed);
  max_nanos_.store(-1, std::memory_order_relaxed);
}

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help,
                                     const std::string& labels) {
  auto owned = std::make_unique<Counter>();
  Counter* raw = owned.get();
  std::lock_guard<std::mutex> lock(mu_);
  owned_counters_.push_back(std::move(owned));
  entries_.push_back(
      {Entry::Type::kCounter, name, help, labels, raw, nullptr, nullptr,
       nullptr});
  return raw;
}

Gauge* MetricsRegistry::AddGauge(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels) {
  auto owned = std::make_unique<Gauge>();
  Gauge* raw = owned.get();
  std::lock_guard<std::mutex> lock(mu_);
  owned_gauges_.push_back(std::move(owned));
  entries_.push_back(
      {Entry::Type::kGauge, name, help, labels, nullptr, raw, nullptr,
       nullptr});
  return raw;
}

LatencyHistogram* MetricsRegistry::AddHistogram(const std::string& name,
                                                const std::string& help,
                                                const std::string& labels) {
  auto owned = std::make_unique<LatencyHistogram>();
  LatencyHistogram* raw = owned.get();
  std::lock_guard<std::mutex> lock(mu_);
  owned_histograms_.push_back(std::move(owned));
  entries_.push_back(
      {Entry::Type::kHistogram, name, help, labels, nullptr, nullptr, raw,
       nullptr});
  return raw;
}

void MetricsRegistry::Register(Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
}

void MetricsRegistry::RegisterCounter(const std::string& name,
                                      const std::string& help,
                                      const std::string& labels,
                                      const Counter* counter) {
  Register({Entry::Type::kCounter, name, help, labels, counter, nullptr,
            nullptr, nullptr});
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    const std::string& help,
                                    const std::string& labels,
                                    const Gauge* gauge) {
  Register({Entry::Type::kGauge, name, help, labels, nullptr, gauge,
            nullptr, nullptr});
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const std::string& help,
                                        const std::string& labels,
                                        const LatencyHistogram* histogram) {
  Register({Entry::Type::kHistogram, name, help, labels, nullptr, nullptr,
            histogram, nullptr});
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name,
                                            const std::string& help,
                                            const std::string& labels,
                                            std::function<double()> fn) {
  Register({Entry::Type::kCallbackGauge, name, help, labels, nullptr,
            nullptr, nullptr, std::move(fn)});
}

size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string MetricsRegistry::ExpositionText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  std::string last_header;  // HELP/TYPE emitted once per metric family
  for (const Entry& entry : entries_) {
    switch (entry.type) {
      case Entry::Type::kCounter: {
        const std::string family = entry.name + "_total";
        if (family != last_header) {
          out << "# HELP " << family << " " << entry.help << "\n";
          out << "# TYPE " << family << " counter\n";
          last_header = family;
        }
        out << SampleName(family, entry.labels) << " "
            << FormatValue(static_cast<double>(entry.counter->load()))
            << "\n";
        break;
      }
      case Entry::Type::kGauge:
      case Entry::Type::kCallbackGauge: {
        if (entry.name != last_header) {
          out << "# HELP " << entry.name << " " << entry.help << "\n";
          out << "# TYPE " << entry.name << " gauge\n";
          last_header = entry.name;
        }
        const double value = entry.type == Entry::Type::kGauge
                                 ? entry.gauge->value()
                                 : entry.callback();
        out << SampleName(entry.name, entry.labels) << " "
            << FormatValue(value) << "\n";
        break;
      }
      case Entry::Type::kHistogram: {
        const LatencyHistogram* h = entry.histogram;
        if (entry.name != last_header) {
          out << "# HELP " << entry.name << " " << entry.help << "\n";
          out << "# TYPE " << entry.name << " summary\n";
          last_header = entry.name;
        }
        for (double q : {0.5, 0.9, 0.99}) {
          char quantile[32];
          std::snprintf(quantile, sizeof(quantile), "quantile=\"%g\"", q);
          out << SampleName(entry.name, entry.labels, quantile) << " "
              << FormatValue(h->PercentileMicros(q)) << "\n";
        }
        out << SampleName(entry.name + "_sum", entry.labels) << " "
            << FormatValue(h->total_micros()) << "\n";
        out << SampleName(entry.name + "_count", entry.labels) << " "
            << FormatValue(static_cast<double>(h->count())) << "\n";
        for (const char* suffix : {"_min", "_max"}) {
          const std::string gauge_name = entry.name + suffix;
          out << "# HELP " << gauge_name << " " << entry.help
              << (suffix[1] == 'm' && suffix[2] == 'i' ? " (min)"
                                                       : " (max)")
              << "\n";
          out << "# TYPE " << gauge_name << " gauge\n";
          out << SampleName(gauge_name, entry.labels) << " "
              << FormatValue(suffix[1] == 'm' && suffix[2] == 'i'
                                 ? h->MinMicros()
                                 : h->MaxMicros())
              << "\n";
        }
        last_header = entry.name + "_max";
        break;
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::JsonText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const Entry& entry : entries_) {
    if (!first) out << ",";
    first = false;
    const std::string key =
        JsonEscape(SampleName(entry.name, entry.labels));
    out << "\n  \"" << key << "\": ";
    switch (entry.type) {
      case Entry::Type::kCounter:
        out << entry.counter->load();
        break;
      case Entry::Type::kGauge:
        out << FormatValue(entry.gauge->value());
        break;
      case Entry::Type::kCallbackGauge:
        out << FormatValue(entry.callback());
        break;
      case Entry::Type::kHistogram: {
        const LatencyHistogram* h = entry.histogram;
        out << "{\"count\": " << h->count()
            << ", \"sum\": " << FormatValue(h->total_micros())
            << ", \"mean\": " << FormatValue(h->MeanMicros())
            << ", \"min\": " << FormatValue(h->MinMicros())
            << ", \"max\": " << FormatValue(h->MaxMicros())
            << ", \"p50\": " << FormatValue(h->PercentileMicros(0.5))
            << ", \"p90\": " << FormatValue(h->PercentileMicros(0.9))
            << ", \"p99\": " << FormatValue(h->PercentileMicros(0.99))
            << "}";
        break;
      }
    }
  }
  out << "\n}\n";
  return out.str();
}

Status MetricsRegistry::ValidateExposition(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  int samples = 0;
  std::vector<std::string> typed_families;
  auto family_typed = [&typed_families](const std::string& name) {
    for (const std::string& family : typed_families) {
      if (name == family) return true;
      // Summary/auxiliary series share their family's TYPE-or-gauge
      // header; _min/_max/_sum/_count carry their own or the family's.
      if (name.size() > family.size() &&
          name.compare(0, family.size(), family) == 0) {
        const std::string suffix = name.substr(family.size());
        if (suffix == "_sum" || suffix == "_count") return true;
      }
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, name;
      comment >> hash >> keyword >> name;
      if (keyword == "TYPE") {
        std::string type;
        comment >> type;
        if (type != "counter" && type != "gauge" && type != "summary" &&
            type != "histogram" && type != "untyped") {
          return Status::InvalidArgument(
              "line " + std::to_string(line_no) +
              ": unknown metric type '" + type + "'");
        }
        typed_families.push_back(name);
      } else if (keyword != "HELP") {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": comment is neither HELP nor TYPE");
      }
      continue;
    }
    // Sample line: name[{labels}] value
    size_t pos = 0;
    while (pos < line.size() &&
           ValidMetricNameChar(line[pos], pos == 0)) {
      ++pos;
    }
    if (pos == 0) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": invalid metric name");
    }
    const std::string name = line.substr(0, pos);
    if (pos < line.size() && line[pos] == '{') {
      bool in_quotes = false;
      size_t close = std::string::npos;
      for (size_t i = pos + 1; i < line.size(); ++i) {
        if (line[i] == '"' && (i == 0 || line[i - 1] != '\\')) {
          in_quotes = !in_quotes;
        } else if (line[i] == '}' && !in_quotes) {
          close = i;
          break;
        }
      }
      if (close == std::string::npos || in_quotes) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": unbalanced label braces/quotes");
      }
      pos = close + 1;
    }
    if (pos >= line.size() || line[pos] != ' ') {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": missing value separator");
    }
    const std::string value_text = line.substr(pos + 1);
    if (value_text.empty() ||
        value_text.find(' ') != std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": malformed value field");
    }
    if (value_text != "NaN" && value_text != "+Inf" &&
        value_text != "-Inf") {
      char* end = nullptr;
      std::strtod(value_text.c_str(), &end);
      if (end == value_text.c_str() || *end != '\0') {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": value does not parse as float");
      }
    }
    if (!family_typed(name)) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": sample '" + name +
                                     "' has no preceding # TYPE");
    }
    ++samples;
  }
  if (samples == 0) {
    return Status::InvalidArgument("exposition contains no samples");
  }
  return Status::OK();
}

}  // namespace one4all
