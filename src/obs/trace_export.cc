#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace one4all {

namespace {
std::string Micros(uint64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                static_cast<double>(nanos) / 1e3);
  return buf;
}

SpanName EventName(const TraceEvent& event) {
  return static_cast<SpanName>(event.name);
}

struct TreeNode {
  const TraceEvent* event = nullptr;
  std::vector<size_t> children;  ///< indices into the node vector
};

void RenderNode(const std::vector<TreeNode>& nodes, size_t index,
                int depth, std::ostringstream& out) {
  const TraceEvent& event = *nodes[index].event;
  uint64_t child_nanos = 0;
  for (size_t child : nodes[index].children) {
    child_nanos += nodes[child].event->duration_nanos;
  }
  const uint64_t self_nanos = event.duration_nanos > child_nanos
                                  ? event.duration_nanos - child_nanos
                                  : 0;
  for (int i = 0; i < depth; ++i) out << "  ";
  out << SpanNameString(EventName(event)) << "  "
      << Micros(event.duration_nanos) << " us";
  if (!nodes[index].children.empty()) {
    out << "  (self " << Micros(self_nanos) << " us)";
  }
  if (event.arg != 0) out << "  [arg=" << event.arg << "]";
  out << "\n";
  for (size_t child : nodes[index].children) {
    RenderNode(nodes, child, depth + 1, out);
  }
}
}  // namespace

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            int64_t dropped_events) {
  std::ostringstream out;
  out << "{\n"
      << "  \"displayTimeUnit\": \"ms\",\n"
      << "  \"otherData\": {\"dropped_events\": " << dropped_events
      << ", \"exported_events\": " << events.size() << "},\n"
      << "  \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"name\": \"" << SpanNameString(EventName(event))
        << "\", \"cat\": \""
        << SpanCategoryString(static_cast<SpanCategory>(event.category))
        << "\", \"ph\": \"X\", \"ts\": " << Micros(event.start_nanos)
        << ", \"dur\": " << Micros(event.duration_nanos)
        << ", \"pid\": 1, \"tid\": " << event.thread_id
        << ", \"args\": {\"trace_id\": " << event.trace_id
        << ", \"span_id\": " << event.span_id
        << ", \"parent_id\": " << event.parent_id
        << ", \"arg\": " << event.arg << "}}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

Status WriteChromeTraceFile(const std::string& path,
                            const std::vector<TraceEvent>& events,
                            int64_t dropped_events) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open trace file: " + path);
  }
  out << ChromeTraceJson(events, dropped_events);
  out.flush();
  if (!out) {
    return Status::IOError("failed writing trace file: " + path);
  }
  return Status::OK();
}

std::array<SpanAggregate, kNumSpanNames> AggregateBySpanName(
    const std::vector<TraceEvent>& events) {
  std::array<SpanAggregate, kNumSpanNames> aggregates{};
  for (const TraceEvent& event : events) {
    if (event.name >= kNumSpanNames) continue;
    SpanAggregate& agg = aggregates[event.name];
    agg.count += 1;
    agg.total_micros += static_cast<double>(event.duration_nanos) / 1e3;
  }
  return aggregates;
}

std::string RenderSlowestTraceTrees(const std::vector<TraceEvent>& events,
                                    int slowest, int64_t dropped_events) {
  std::vector<TreeNode> nodes(events.size());
  std::map<uint64_t, size_t> by_span_id;
  for (size_t i = 0; i < events.size(); ++i) {
    nodes[i].event = &events[i];
    by_span_id[events[i].span_id] = i;
  }
  std::vector<size_t> roots;
  size_t orphans = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].parent_id == 0) {
      roots.push_back(i);
      continue;
    }
    auto parent = by_span_id.find(events[i].parent_id);
    if (parent == by_span_id.end() ||
        events[parent->second].trace_id != events[i].trace_id) {
      ++orphans;  // parent evicted from the ring before the snapshot
      continue;
    }
    nodes[parent->second].children.push_back(i);
  }
  // Children recorded before their parents closed: order each tree level
  // by start time so the rendering reads chronologically.
  for (TreeNode& node : nodes) {
    std::sort(node.children.begin(), node.children.end(),
              [&nodes](size_t a, size_t b) {
                return nodes[a].event->start_nanos <
                       nodes[b].event->start_nanos;
              });
  }
  std::sort(roots.begin(), roots.end(), [&nodes](size_t a, size_t b) {
    return nodes[a].event->duration_nanos >
           nodes[b].event->duration_nanos;
  });
  if (slowest > 0 && roots.size() > static_cast<size_t>(slowest)) {
    roots.resize(static_cast<size_t>(slowest));
  }

  std::ostringstream out;
  out << "Slowest " << roots.size() << " trace(s) of " << events.size()
      << " recorded span(s); " << dropped_events
      << " event(s) dropped by the ring";
  if (orphans > 0) {
    out << "; " << orphans << " span(s) orphaned by eviction";
  }
  out << "\n";
  int rank = 1;
  for (size_t root : roots) {
    const TraceEvent& event = *nodes[root].event;
    out << "\n#" << rank++ << "  trace " << event.trace_id << "  ("
        << SpanCategoryString(static_cast<SpanCategory>(event.category))
        << ", thread " << event.thread_id << ")\n";
    RenderNode(nodes, root, 1, out);
  }
  return out.str();
}

}  // namespace one4all
