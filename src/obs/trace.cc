#include "obs/trace.h"

namespace one4all {

const char* SpanNameString(SpanName name) {
  switch (name) {
    case SpanName::kQuery: return "query";
    case SpanName::kAdmission: return "admission";
    case SpanName::kPlan: return "plan";
    case SpanName::kCacheProbe: return "cache_probe";
    case SpanName::kResolve: return "resolve";
    case SpanName::kEpochPin: return "epoch_pin";
    case SpanName::kGather: return "gather";
    case SpanName::kFold: return "fold";
    case SpanName::kRank: return "rank";
    case SpanName::kPublishEpoch: return "publish_epoch";
    case SpanName::kInfer: return "infer";
    case SpanName::kStageFrames: return "stage_frames";
    case SpanName::kBuildSatPlane: return "build_sat_plane";
    case SpanName::kPublish: return "publish";
    case SpanName::kReclaim: return "reclaim";
    case SpanName::kShardScatter: return "shard_scatter";
    case SpanName::kShardGather: return "shard_gather";
    case SpanName::kBarrierWait: return "barrier_wait";
    case SpanName::kTileSatFixup: return "tile_sat_fixup";
  }
  return "unknown";
}

const char* SpanCategoryString(SpanCategory category) {
  switch (category) {
    case SpanCategory::kQuery: return "query";
    case SpanCategory::kEpoch: return "epoch";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(TraceRecorderOptions options)
    : ring_(options.ring_capacity),
      enabled_(options.enabled),
      sample_every_n_(options.sample_every_n),
      birth_(std::chrono::steady_clock::now()) {}

TraceContext TraceRecorder::StartTrace(SpanCategory category) {
  TraceContext ctx;
  if (!enabled()) return ctx;
  ctx.recorder = this;
  ctx.category = category;
  ctx.trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  const int n = sample_every_n();
  ctx.sampled =
      n <= 1 ||
      head_counter_.fetch_add(1, std::memory_order_relaxed) %
              static_cast<uint64_t>(n) ==
          0;
  return ctx;
}

TraceRecorder& TraceRecorder::Global() {
  // Leaked on purpose: outlives every static destructor that might still
  // be closing spans during shutdown.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

uint32_t TraceRecorder::CurrentThreadId() {
  static std::atomic<uint32_t> next_id{1};
  thread_local uint32_t id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

ScopedSpan::ScopedSpan(TraceContext* ctx, SpanName name, int64_t arg)
    : arg_(arg), name_(name) {
  if (ctx == nullptr || !ctx->active()) return;
  // Interior spans exist only in head-sampled traces; the root span
  // (parent_span == 0) is always-on so rates and totals stay exact.
  if (ctx->parent_span != 0 && !ctx->sampled) return;
  ctx_ = ctx;
  span_id_ = ctx->recorder->NewSpanId();
  saved_parent_ = ctx->parent_span;
  ctx->parent_span = span_id_;
  start_nanos_ = ctx->recorder->NowNanos();
}

void ScopedSpan::Close() {
  if (ctx_ == nullptr) return;
  const uint64_t end_nanos = ctx_->recorder->NowNanos();
  ctx_->parent_span = saved_parent_;
  TraceEvent event;
  event.trace_id = ctx_->trace_id;
  event.span_id = span_id_;
  event.parent_id = saved_parent_;
  event.start_nanos = start_nanos_;
  event.duration_nanos =
      end_nanos > start_nanos_ ? end_nanos - start_nanos_ : 0;
  event.arg = arg_;
  event.thread_id = TraceRecorder::CurrentThreadId();
  event.name = static_cast<uint8_t>(name_);
  event.category = static_cast<uint8_t>(ctx_->category);
  ctx_->recorder->Record(event);
  ctx_ = nullptr;
}

}  // namespace one4all
