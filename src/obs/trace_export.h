// Exporters for recorded trace events: Chrome/Perfetto `trace_event`
// JSON (load the file in ui.perfetto.dev or chrome://tracing), a human
// slowest-N span-tree renderer with per-stage self-times, and a
// per-span-name aggregation used for stage-attributed latency
// breakdowns in benchmarks.
#ifndef ONE4ALL_OBS_TRACE_EXPORT_H_
#define ONE4ALL_OBS_TRACE_EXPORT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "obs/trace.h"

namespace one4all {

/// \brief Chrome trace_event JSON ("X" complete events, microsecond
/// timestamps). `dropped_events` is surfaced in otherData so a truncated
/// ring is visible in the trace viewer, never silent.
std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            int64_t dropped_events);

Status WriteChromeTraceFile(const std::string& path,
                            const std::vector<TraceEvent>& events,
                            int64_t dropped_events);

/// \brief Sum/count of span durations keyed by SpanName value.
struct SpanAggregate {
  int64_t count = 0;
  double total_micros = 0.0;

  double MeanMicros() const {
    return count == 0 ? 0.0
                      : total_micros / static_cast<double>(count);
  }
};

std::array<SpanAggregate, kNumSpanNames> AggregateBySpanName(
    const std::vector<TraceEvent>& events);

/// \brief Renders the `slowest` longest root spans as indented trees:
/// each line shows the span, its duration and its self-time (duration
/// minus direct children). Children orphaned by ring eviction are noted.
std::string RenderSlowestTraceTrees(const std::vector<TraceEvent>& events,
                                    int slowest, int64_t dropped_events);

}  // namespace one4all

#endif  // ONE4ALL_OBS_TRACE_EXPORT_H_
