#include "obs/event_ring.h"

#include <algorithm>
#include <utility>

namespace one4all {

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

TraceEventRing::TraceEventRing(size_t capacity)
    : capacity_(RoundUpPow2(std::max<size_t>(capacity, 2))),
      mask_(static_cast<uint64_t>(capacity_) - 1),
      slots_(new Slot[capacity_]) {}

void TraceEventRing::Append(const TraceEvent& event) {
  const uint64_t ticket = cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Claim the slot by flipping its sequence odd. The only writer allowed
  // in is the one whose CAS from the current even value succeeds; a
  // producer that got lapped (slot already claimed by a newer ticket, or
  // an older writer still inside) gives up and counts the drop — the hot
  // path never spins.
  uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  if ((seq & 1) != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq | 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    contended_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.trace_id.store(event.trace_id, std::memory_order_relaxed);
  slot.span_id.store(event.span_id, std::memory_order_relaxed);
  slot.parent_id.store(event.parent_id, std::memory_order_relaxed);
  slot.start_nanos.store(event.start_nanos, std::memory_order_relaxed);
  slot.duration_nanos.store(event.duration_nanos, std::memory_order_relaxed);
  slot.arg.store(event.arg, std::memory_order_relaxed);
  slot.thread_id.store(event.thread_id, std::memory_order_relaxed);
  slot.name.store(event.name, std::memory_order_relaxed);
  slot.category.store(event.category, std::memory_order_relaxed);
  // Commit: even sequence derived from the ticket, so a reader can order
  // slots chronologically and detect that this slot was republished.
  slot.seq.store((ticket + 1) << 1, std::memory_order_release);
}

std::vector<TraceEvent> TraceEventRing::Snapshot() const {
  std::vector<std::pair<uint64_t, TraceEvent>> found;
  found.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write
    TraceEvent event;
    event.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    event.span_id = slot.span_id.load(std::memory_order_relaxed);
    event.parent_id = slot.parent_id.load(std::memory_order_relaxed);
    event.start_nanos = slot.start_nanos.load(std::memory_order_relaxed);
    event.duration_nanos =
        slot.duration_nanos.load(std::memory_order_relaxed);
    event.arg = slot.arg.load(std::memory_order_relaxed);
    event.thread_id = slot.thread_id.load(std::memory_order_relaxed);
    event.name =
        static_cast<uint8_t>(slot.name.load(std::memory_order_relaxed));
    event.category =
        static_cast<uint8_t>(slot.category.load(std::memory_order_relaxed));
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t s2 = slot.seq.load(std::memory_order_relaxed);
    if (s1 != s2) continue;  // overwritten while reading; skip torn slot
    found.emplace_back((s1 >> 1) - 1, event);  // recover the ticket
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<TraceEvent> events;
  events.reserve(found.size());
  for (auto& entry : found) events.push_back(entry.second);
  return events;
}

void TraceEventRing::Reset() {
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].seq.store(0, std::memory_order_relaxed);
  }
  cursor_.store(0, std::memory_order_relaxed);
  contended_.store(0, std::memory_order_relaxed);
}

}  // namespace one4all
