// Bounded lock-free flight recorder for trace events: many producers
// append completed spans with two atomic RMWs plus relaxed payload
// stores; readers snapshot at any time without stopping writers. The
// ring keeps the newest `capacity` events (drop-oldest) and accounts
// for every event it could not keep — drop counts are part of the
// exported surface, never silent.
#ifndef ONE4ALL_OBS_EVENT_RING_H_
#define ONE4ALL_OBS_EVENT_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace one4all {

/// \brief One completed span, fixed size so ring slots never allocate.
/// Times are nanoseconds since the owning recorder's birth; `parent_id`
/// is 0 for trace roots. `name`/`category` are SpanName/SpanCategory
/// enum values kept as raw integers so this struct stays a plain POD
/// shared between the ring and the exporters.
struct TraceEvent {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0: root of its trace
  uint64_t start_nanos = 0;
  uint64_t duration_nanos = 0;
  int64_t arg = 0;  ///< span-specific detail (rows, timestep, generation...)
  uint32_t thread_id = 0;
  uint8_t name = 0;      ///< SpanName
  uint8_t category = 0;  ///< SpanCategory
};

/// \brief MPSC-style bounded ring of TraceEvents (multi-producer append,
/// any-thread snapshot reads). Each slot carries a seqlock word: a
/// producer claims a ticket with one fetch_add, marks the slot odd,
/// writes the payload through relaxed atomic fields, then releases the
/// slot with the ticket's even sequence. Readers accept a slot only when
/// the sequence is even and unchanged across the payload read, so a torn
/// (concurrently overwritten) slot is skipped rather than misreported —
/// and TSan sees only atomic accesses.
class TraceEventRing {
 public:
  /// \param capacity Rounded up to a power of two; minimum 2.
  explicit TraceEventRing(size_t capacity);

  TraceEventRing(const TraceEventRing&) = delete;
  TraceEventRing& operator=(const TraceEventRing&) = delete;

  /// \brief Records `event`, overwriting the oldest slot once full.
  /// Never blocks: when another producer is mid-write in the same slot
  /// (lapped writer), the event is dropped and counted instead.
  void Append(const TraceEvent& event);

  /// \brief Stable copy of every currently-readable event, oldest first.
  /// Slots being overwritten during the read are skipped (they are
  /// counted by the drop accounting of the writers that lapped them).
  std::vector<TraceEvent> Snapshot() const;

  /// \brief Events ever handed to Append().
  int64_t total_appended() const {
    return static_cast<int64_t>(cursor_.load(std::memory_order_relaxed));
  }
  /// \brief Events lost because the ring wrapped past them. Contended
  /// drops never occupied a slot, so they are excluded here — at
  /// quiescence `Snapshot().size() + dropped_total() == total_appended()`
  /// holds exactly.
  int64_t dropped_overwritten() const {
    const int64_t stored = total_appended() - dropped_contended();
    const int64_t cap = static_cast<int64_t>(capacity_);
    return stored > cap ? stored - cap : 0;
  }
  /// \brief Events abandoned because the target slot was mid-write.
  int64_t dropped_contended() const {
    return contended_.load(std::memory_order_relaxed);
  }
  int64_t dropped_total() const {
    return dropped_overwritten() + dropped_contended();
  }

  size_t capacity() const { return capacity_; }

  /// \brief Clears every slot and counter. Not safe against concurrent
  /// Append(); call only while producers are quiescent (between bench
  /// phases, after Stop()).
  void Reset();

 private:
  // seq even: slot committed by ticket (seq>>1)-1, or empty when 0.
  // seq odd: a producer is writing the payload right now.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_id{0};
    std::atomic<uint64_t> start_nanos{0};
    std::atomic<uint64_t> duration_nanos{0};
    std::atomic<int64_t> arg{0};
    std::atomic<uint32_t> thread_id{0};
    std::atomic<uint16_t> name{0};
    std::atomic<uint16_t> category{0};
  };

  size_t capacity_;
  uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> cursor_{0};   ///< next ticket == total appended
  std::atomic<int64_t> contended_{0};
};

}  // namespace one4all

#endif  // ONE4ALL_OBS_EVENT_RING_H_
