// Scale-vs-predictability analysis (paper Fig. 10 left): mean ACF of grid
// flow series per hierarchy scale, computed on the training split.
#ifndef ONE4ALL_EVAL_PREDICTABILITY_H_
#define ONE4ALL_EVAL_PREDICTABILITY_H_

#include <vector>

#include "data/dataset.h"

namespace one4all {

struct ScalePredictability {
  int layer = 1;
  int64_t scale = 1;
  double mean_acf = 0.0;
  double stddev_acf = 0.0;  ///< dispersion across grids (Fig. 10's band)
  int64_t num_grids = 0;
};

/// \brief Mean lag-`lag` ACF per scale over all grids with non-degenerate
/// series (default lag = one day, the paper's choice).
std::vector<ScalePredictability> MeanAcfPerScale(const STDataset& dataset,
                                                 int64_t lag = 0);

/// \brief Correlation between a grid's mean flow volume and its ACF at the
/// atomic scale — the paper's "high-flow areas are more predictable"
/// observation (Fig. 10 left, flows axis).
double FlowVsAcfCorrelation(const STDataset& dataset, int64_t lag = 0);

}  // namespace one4all

#endif  // ONE4ALL_EVAL_PREDICTABILITY_H_
