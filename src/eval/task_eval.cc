#include "eval/task_eval.h"

#include <algorithm>

#include "core/stopwatch.h"
#include "core/thread_pool.h"
#include "eval/metrics.h"
#include "tensor/gemm.h"

namespace one4all {


std::vector<TaskSpec> PaperTasks(bool hexagon_task1) {
  // Mean areas follow Sec. V-A3 (150 m atomic cells): 0.3 / 0.6 / 1.3 /
  // 4.8 km^2 -> ~13 / 27 / 58 / 213 cells.
  std::vector<TaskSpec> tasks;
  tasks.push_back(TaskSpec{
      "Task 1", hexagon_task1 ? RegionStyle::kHexagon : RegionStyle::kVoronoi,
      13.0, 101});
  tasks.push_back(TaskSpec{"Task 2", RegionStyle::kRoadGrid, 27.0, 102});
  tasks.push_back(TaskSpec{"Task 3", RegionStyle::kRoadGrid, 58.0, 103});
  tasks.push_back(TaskSpec{"Task 4", RegionStyle::kRoadGrid, 213.0, 104});
  return tasks;
}

std::vector<GridMask> MakeTaskRegions(const STDataset& dataset,
                                      const TaskSpec& task) {
  RegionGeneratorOptions options;
  options.style = task.style;
  options.mean_cells = task.mean_cells;
  options.seed = task.seed;
  return GenerateRegions(dataset.hierarchy().atomic_height(),
                         dataset.hierarchy().atomic_width(), options);
}

double RegionTruth(const STDataset& dataset, const GridMask& region,
                   int64_t t) {
  return region.MaskedSum(dataset.FrameAtLayer(t, 1));
}

namespace {

// Evaluates a per-(region,t) prediction callback against region truth.
template <typename PredFn>
QueryEvalResult EvaluateWith(const STDataset& dataset,
                             const std::vector<GridMask>& regions,
                             const std::vector<int64_t>& timesteps,
                             const PredFn& pred_fn) {
  MetricAccumulator acc;
  for (size_t qi = 0; qi < regions.size(); ++qi) {
    for (size_t ti = 0; ti < timesteps.size(); ++ti) {
      const double predicted = pred_fn(qi, ti);
      const double truth =
          RegionTruth(dataset, regions[qi], timesteps[ti]);
      acc.Add(predicted, truth);
    }
  }
  QueryEvalResult result;
  result.rmse = acc.Rmse();
  result.mape = acc.Mape();
  result.mae = acc.Mae();
  result.num_queries = static_cast<int>(regions.size());
  return result;
}

}  // namespace

QueryEvalResult EvaluateAtomicAggregation(
    FlowPredictor* predictor, const STDataset& dataset,
    const std::vector<GridMask>& regions,
    const std::vector<int64_t>& timesteps) {
  ScopedComputePool scoped_pool(ResolveComputePool());
  // Predict the atomic raster once for all slots, then mask-sum.
  const int64_t t_total = static_cast<int64_t>(timesteps.size());
  const int64_t h = dataset.hierarchy().atomic_height();
  const int64_t w = dataset.hierarchy().atomic_width();
  Tensor atomic({t_total, h, w});
  constexpr int kBatch = 16;
  for (int64_t off = 0; off < t_total; off += kBatch) {
    const int64_t end = std::min(t_total, off + kBatch);
    std::vector<int64_t> batch(timesteps.begin() + off,
                               timesteps.begin() + end);
    const Tensor p = predictor->PredictLayer(dataset, batch, 1);
    std::copy(p.data(), p.data() + (end - off) * h * w,
              atomic.data() + off * h * w);
  }
  return EvaluateWith(
      dataset, regions, timesteps, [&](size_t qi, size_t ti) {
        Tensor frame({h, w});
        std::copy(atomic.data() + static_cast<int64_t>(ti) * h * w,
                  atomic.data() + (static_cast<int64_t>(ti) + 1) * h * w,
                  frame.data());
        return regions[qi].MaskedSum(frame);
      });
}

QueryEvalResult EvaluateClusterPlusAtomic(
    FlowPredictor* predictor, const STDataset& dataset, int cluster_layer,
    const std::vector<GridMask>& regions,
    const std::vector<int64_t>& timesteps) {
  ScopedComputePool scoped_pool(ResolveComputePool());
  const Hierarchy& hierarchy = dataset.hierarchy();
  const int64_t t_total = static_cast<int64_t>(timesteps.size());
  const int64_t h = hierarchy.atomic_height(), w = hierarchy.atomic_width();
  const LayerInfo& cinfo = hierarchy.layer(cluster_layer);

  Tensor atomic({t_total, h, w});
  Tensor cluster({t_total, cinfo.height, cinfo.width});
  constexpr int kBatch = 16;
  for (int64_t off = 0; off < t_total; off += kBatch) {
    const int64_t end = std::min(t_total, off + kBatch);
    std::vector<int64_t> batch(timesteps.begin() + off,
                               timesteps.begin() + end);
    const Tensor pa = predictor->PredictLayer(dataset, batch, 1);
    std::copy(pa.data(), pa.data() + (end - off) * h * w,
              atomic.data() + off * h * w);
    const Tensor pc = predictor->PredictLayer(dataset, batch, cluster_layer);
    std::copy(pc.data(),
              pc.data() + (end - off) * cinfo.height * cinfo.width,
              cluster.data() + off * cinfo.height * cinfo.width);
  }

  // Pre-resolve each region into cluster grids fully inside it plus the
  // complementary atomic cells.
  struct Resolution {
    std::vector<GridId> clusters;
    GridMask remainder;
  };
  std::vector<Resolution> resolutions;
  resolutions.reserve(regions.size());
  for (const GridMask& region : regions) {
    Resolution res;
    res.remainder = region;
    for (int64_t r = 0; r < cinfo.height; ++r) {
      for (int64_t c = 0; c < cinfo.width; ++c) {
        const GridId id{cluster_layer, r, c};
        if (hierarchy.GridInsideRegion(region, id)) {
          res.clusters.push_back(id);
          const CellRect rect = hierarchy.CellsOf(id);
          res.remainder.ClearRect(rect.r0, rect.c0, rect.r1, rect.c1);
        }
      }
    }
    resolutions.push_back(std::move(res));
  }

  return EvaluateWith(
      dataset, regions, timesteps, [&](size_t qi, size_t ti) {
        const Resolution& res = resolutions[qi];
        double value = 0.0;
        for (const GridId& id : res.clusters) {
          value += cluster.data()[(static_cast<int64_t>(ti) * cinfo.height +
                                   id.row) *
                                      cinfo.width +
                                  id.col];
        }
        Tensor frame({h, w});
        std::copy(atomic.data() + static_cast<int64_t>(ti) * h * w,
                  atomic.data() + (static_cast<int64_t>(ti) + 1) * h * w,
                  frame.data());
        value += res.remainder.MaskedSum(frame);
        return value;
      });
}

std::unique_ptr<MauPipeline> MauPipeline::Build(FlowPredictor* predictor,
                                                const STDataset& dataset,
                                                const SearchOptions& options,
                                                ThreadPool* pool) {
  // Both bulk prediction passes below (validation scoring + test ingest)
  // run the predictor's kernels over the compute pool.
  ScopedComputePool scoped_pool(ResolveComputePool(pool));
  auto pipeline = std::unique_ptr<MauPipeline>(new MauPipeline());
  pipeline->dataset_ = &dataset;
  pipeline->test_ = dataset.test_indices();

  // Offline: score combinations on the validation split.
  const ScalePredictionSet val_preds = ScalePredictionSet::FromPredictor(
      predictor, dataset, dataset.val_indices());
  Stopwatch search_timer;
  pipeline->search_ =
      SearchOptimalCombinations(dataset.hierarchy(), val_preds, options);
  pipeline->search_seconds_ = search_timer.ElapsedSeconds();
  pipeline->index_ =
      ExtendedQuadTree::Build(dataset.hierarchy(), pipeline->search_);

  // Online: sync test predictions for every layer into the KV store.
  constexpr int kBatch = 16;
  const int64_t t_total = static_cast<int64_t>(pipeline->test_.size());
  for (int64_t off = 0; off < t_total; off += kBatch) {
    const int64_t end = std::min(t_total, off + kBatch);
    std::vector<int64_t> batch(pipeline->test_.begin() + off,
                               pipeline->test_.begin() + end);
    const std::vector<Tensor> layer_preds =
        predictor->PredictAllLayers(dataset, batch);
    for (int l = 1; l <= dataset.hierarchy().num_layers(); ++l) {
      const Tensor& p = layer_preds[static_cast<size_t>(l - 1)];
      const int64_t lh = p.dim(2), lw = p.dim(3);
      for (int64_t i = 0; i < end - off; ++i) {
        Tensor frame({lh, lw});
        std::copy(p.data() + i * lh * lw, p.data() + (i + 1) * lh * lw,
                  frame.data());
        pipeline->store_.SyncFrame(l, batch[static_cast<size_t>(i)], frame);
      }
    }
  }
  // Derive summed-area planes for everything just synced, so the SAT
  // fast path works against the static generation exactly as it does
  // against epoch-published ones. Cost is one pass over the (small)
  // per-layer frames; negligible next to the prediction ingest above.
  pipeline->store_.BuildSatPlanes(0);

  pipeline->server_ = std::make_unique<RegionQueryServer>(
      &dataset.hierarchy(), &pipeline->index_, &pipeline->store_);
  return pipeline;
}

QueryEvalResult MauPipeline::Evaluate(const std::vector<GridMask>& regions,
                                      QueryStrategy strategy) const {
  MetricAccumulator acc;
  for (const GridMask& region : regions) {
    auto resolved = server_->Resolve(region, strategy);
    O4A_CHECK(resolved.ok()) << resolved.status().ToString();
    for (int64_t t : test_) {
      acc.Add(server_->EvaluateTerms(resolved->terms, t),
              RegionTruth(*dataset_, region, t));
    }
  }
  QueryEvalResult result;
  result.rmse = acc.Rmse();
  result.mape = acc.Mape();
  result.mae = acc.Mae();
  result.num_queries = static_cast<int>(regions.size());
  return result;
}

std::vector<MauPipeline::PerQuery> MauPipeline::EvaluateDetailed(
    const std::vector<GridMask>& regions, QueryStrategy strategy) const {
  std::vector<PerQuery> out;
  out.reserve(regions.size());
  for (const GridMask& region : regions) {
    auto resolved = server_->Resolve(region, strategy);
    O4A_CHECK(resolved.ok()) << resolved.status().ToString();
    MetricAccumulator acc;
    for (int64_t t : test_) {
      acc.Add(server_->EvaluateTerms(resolved->terms, t),
              RegionTruth(*dataset_, region, t));
    }
    PerQuery pq;
    pq.rmse = acc.Rmse();
    pq.terms = std::move(resolved->terms);
    out.push_back(std::move(pq));
  }
  return out;
}

}  // namespace one4all
