// Task-level evaluation harness shared by the benchmark binaries:
// the paper's four query tasks (Sec. V-A3), baseline evaluation by atomic
// aggregation, MC-STGCN's cluster-first strategy, and the full One4All-ST
// pipeline (search -> quad-tree -> online queries).
#ifndef ONE4ALL_EVAL_TASK_EVAL_H_
#define ONE4ALL_EVAL_TASK_EVAL_H_

#include <memory>
#include <string>
#include <vector>

#include "combine/search.h"
#include "grid/region_generator.h"
#include "index/quadtree.h"
#include "kvstore/prediction_store.h"
#include "query/query_server.h"

namespace one4all {

class ThreadPool;  // core/thread_pool.h

/// \brief One of the paper's prediction tasks.
struct TaskSpec {
  std::string name;
  RegionStyle style = RegionStyle::kRoadGrid;
  double mean_cells = 27.0;
  uint64_t seed = 7;
};

/// \brief The paper's Tasks 1-4. Task 1 uses census-tract-like Voronoi
/// zones for the taxi workload and hexagons for freight (Sec. V-A3);
/// Tasks 2-4 are road-map partitions at 0.6/1.3/4.8 km^2.
std::vector<TaskSpec> PaperTasks(bool hexagon_task1);

/// \brief Generates a task's region queries over the dataset's raster.
std::vector<GridMask> MakeTaskRegions(const STDataset& dataset,
                                      const TaskSpec& task);

/// \brief Aggregate accuracy over (region x test-slot) queries.
struct QueryEvalResult {
  double rmse = 0.0;
  double mape = 0.0;
  double mae = 0.0;
  int num_queries = 0;
};

/// \brief Evaluates a single-scale model the way the paper evaluates the
/// baselines: sum its atomic predictions over each region.
QueryEvalResult EvaluateAtomicAggregation(
    FlowPredictor* predictor, const STDataset& dataset,
    const std::vector<GridMask>& regions,
    const std::vector<int64_t>& timesteps);

/// \brief MC-STGCN's query strategy: use cluster predictions for cluster
/// grids fully inside the region, atomic predictions for the remainder.
QueryEvalResult EvaluateClusterPlusAtomic(
    FlowPredictor* predictor, const STDataset& dataset, int cluster_layer,
    const std::vector<GridMask>& regions,
    const std::vector<int64_t>& timesteps);

/// \brief The full offline+online MAU pipeline around one predictor:
/// validation predictions -> combination search -> quad-tree index ->
/// test predictions synced into the KV store -> query server.
class MauPipeline {
 public:
  /// \param predictor Must stay alive while Build runs (not retained).
  /// \param pool Compute pool for the predictor's forward passes during
  /// ingest; null inherits the caller's ScopedComputePool, falling back
  /// to the process-wide ThreadPool::Shared().
  static std::unique_ptr<MauPipeline> Build(FlowPredictor* predictor,
                                            const STDataset& dataset,
                                            const SearchOptions& options = {},
                                            ThreadPool* pool = nullptr);

  /// \brief Accuracy of the given strategy over (regions x test slots).
  QueryEvalResult Evaluate(const std::vector<GridMask>& regions,
                           QueryStrategy strategy) const;

  /// \brief Per-query detail for the Table III analysis.
  struct PerQuery {
    double rmse = 0.0;
    std::vector<CombinationTerm> terms;
  };
  std::vector<PerQuery> EvaluateDetailed(const std::vector<GridMask>& regions,
                                         QueryStrategy strategy) const;

  const RegionQueryServer& server() const { return *server_; }
  const ExtendedQuadTree& index() const { return index_; }
  const CombinationSearchResult& search_result() const { return search_; }
  const std::vector<int64_t>& test_timesteps() const { return test_; }
  const STDataset& dataset() const { return *dataset_; }
  /// \brief Wall-clock seconds spent in SearchOptimalCombinations.
  double search_seconds() const { return search_seconds_; }

 private:
  MauPipeline() = default;

  const STDataset* dataset_ = nullptr;
  CombinationSearchResult search_;
  ExtendedQuadTree index_;
  PredictionStore store_;
  std::unique_ptr<RegionQueryServer> server_;
  std::vector<int64_t> test_;
  double search_seconds_ = 0.0;
};

/// \brief Ground-truth flow of a region at time slot t (sum of atomic
/// truth over the mask).
double RegionTruth(const STDataset& dataset, const GridMask& region,
                   int64_t t);

}  // namespace one4all

#endif  // ONE4ALL_EVAL_TASK_EVAL_H_
