#include "eval/predictability.h"

#include <cmath>

#include "eval/metrics.h"

namespace one4all {

namespace {

std::vector<float> GridSeries(const STDataset& dataset, int layer,
                              int64_t row, int64_t col) {
  const auto& train = dataset.train_indices();
  std::vector<float> series;
  series.reserve(train.size());
  for (int64_t t : train) {
    series.push_back(dataset.FrameAtLayer(t, layer).at(row, col));
  }
  return series;
}

}  // namespace

std::vector<ScalePredictability> MeanAcfPerScale(const STDataset& dataset,
                                                 int64_t lag) {
  if (lag <= 0) lag = dataset.spec().daily_interval;
  std::vector<ScalePredictability> out;
  for (int l = 1; l <= dataset.hierarchy().num_layers(); ++l) {
    const LayerInfo& info = dataset.hierarchy().layer(l);
    double sum = 0.0, sq = 0.0;
    int64_t count = 0;
    for (int64_t r = 0; r < info.height; ++r) {
      for (int64_t c = 0; c < info.width; ++c) {
        const double acf =
            Autocorrelation(GridSeries(dataset, l, r, c), lag);
        sum += acf;
        sq += acf * acf;
        ++count;
      }
    }
    ScalePredictability sp;
    sp.layer = l;
    sp.scale = info.scale;
    sp.num_grids = count;
    if (count > 0) {
      sp.mean_acf = sum / static_cast<double>(count);
      const double var =
          std::max(0.0, sq / static_cast<double>(count) -
                            sp.mean_acf * sp.mean_acf);
      sp.stddev_acf = std::sqrt(var);
    }
    out.push_back(sp);
  }
  return out;
}

double FlowVsAcfCorrelation(const STDataset& dataset, int64_t lag) {
  if (lag <= 0) lag = dataset.spec().daily_interval;
  const LayerInfo& info = dataset.hierarchy().layer(1);
  std::vector<double> flows, acfs;
  for (int64_t r = 0; r < info.height; ++r) {
    for (int64_t c = 0; c < info.width; ++c) {
      const std::vector<float> series = GridSeries(dataset, 1, r, c);
      double mean = 0.0;
      for (float v : series) mean += v;
      mean /= static_cast<double>(series.size());
      flows.push_back(mean);
      acfs.push_back(Autocorrelation(series, lag));
    }
  }
  // Pearson correlation.
  const size_t n = flows.size();
  double mf = 0.0, ma = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mf += flows[i];
    ma += acfs[i];
  }
  mf /= static_cast<double>(n);
  ma /= static_cast<double>(n);
  double num = 0.0, df = 0.0, da = 0.0;
  for (size_t i = 0; i < n; ++i) {
    num += (flows[i] - mf) * (acfs[i] - ma);
    df += (flows[i] - mf) * (flows[i] - mf);
    da += (acfs[i] - ma) * (acfs[i] - ma);
  }
  if (df <= 1e-12 || da <= 1e-12) return 0.0;
  return num / std::sqrt(df * da);
}

}  // namespace one4all
