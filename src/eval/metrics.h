// Evaluation metrics (paper Sec. V-A2): RMSE, MAPE, MAE over paired
// prediction/truth samples, plus the auto-correlation-function (ACF)
// predictability proxy used in Fig. 10.
#ifndef ONE4ALL_EVAL_METRICS_H_
#define ONE4ALL_EVAL_METRICS_H_

#include <vector>

#include "core/logging.h"

namespace one4all {

/// \brief Streaming accumulator for RMSE / MAPE / MAE.
///
/// MAPE skips samples whose truth is below `mape_threshold` — the
/// standard guard against division blow-ups on near-zero flows.
class MetricAccumulator {
 public:
  explicit MetricAccumulator(double mape_threshold = 1.0)
      : mape_threshold_(mape_threshold) {}

  void Add(double predicted, double truth);
  void Merge(const MetricAccumulator& other);

  double Rmse() const;
  double Mape() const;
  double Mae() const;
  int64_t count() const { return count_; }

 private:
  double mape_threshold_;
  double sq_sum_ = 0.0;
  double abs_sum_ = 0.0;
  double ape_sum_ = 0.0;
  int64_t count_ = 0;
  int64_t mape_count_ = 0;
};

/// \brief Lag-`lag` autocorrelation of a series (Fig. 10's
/// predictability proxy; the paper uses the daily lag).
/// Returns 0 for degenerate (constant) series.
double Autocorrelation(const std::vector<float>& series, int64_t lag);

}  // namespace one4all

#endif  // ONE4ALL_EVAL_METRICS_H_
