#include "eval/metrics.h"

#include <cmath>

namespace one4all {

void MetricAccumulator::Add(double predicted, double truth) {
  const double diff = predicted - truth;
  sq_sum_ += diff * diff;
  abs_sum_ += std::fabs(diff);
  ++count_;
  if (truth >= mape_threshold_) {
    ape_sum_ += std::fabs(diff) / truth;
    ++mape_count_;
  }
}

void MetricAccumulator::Merge(const MetricAccumulator& other) {
  sq_sum_ += other.sq_sum_;
  abs_sum_ += other.abs_sum_;
  ape_sum_ += other.ape_sum_;
  count_ += other.count_;
  mape_count_ += other.mape_count_;
}

double MetricAccumulator::Rmse() const {
  if (count_ == 0) return 0.0;
  return std::sqrt(sq_sum_ / static_cast<double>(count_));
}

double MetricAccumulator::Mape() const {
  if (mape_count_ == 0) return 0.0;
  return ape_sum_ / static_cast<double>(mape_count_);
}

double MetricAccumulator::Mae() const {
  if (count_ == 0) return 0.0;
  return abs_sum_ / static_cast<double>(count_);
}

double Autocorrelation(const std::vector<float>& series, int64_t lag) {
  O4A_CHECK_GT(lag, 0);
  const int64_t n = static_cast<int64_t>(series.size());
  if (n <= lag + 1) return 0.0;
  double mean = 0.0;
  for (float v : series) mean += v;
  mean /= static_cast<double>(n);
  double num = 0.0, den = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = series[static_cast<size_t>(i)] - mean;
    den += d * d;
    if (i + lag < n) {
      num += d * (series[static_cast<size_t>(i + lag)] - mean);
    }
  }
  if (den <= 1e-12) return 0.0;
  return num / den;
}

}  // namespace one4all
