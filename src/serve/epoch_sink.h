// The publication seam between the stream ingestor and whatever epoch
// substrate serves queries: the single-process FrameEpochManager, or a
// ShardSet that slices each frame across N band-partitioned shards and
// flips them behind one barrier. The ingestor only ever sees this
// interface, so sharding is invisible to the ingest loop.
#ifndef ONE4ALL_SERVE_EPOCH_SINK_H_
#define ONE4ALL_SERVE_EPOCH_SINK_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "tensor/tensor.h"
#include "tensor/tiled_sat.h"

namespace one4all {

struct TraceContext;  // obs/trace.h

/// \brief One atomically-published epoch per call.
class EpochSink {
 public:
  virtual ~EpochSink() = default;

  /// \brief Stages the full multi-scale frame set of timestep `t`
  /// (frames[l-1] is layer l, [Hl, Wl]) and publishes it as one epoch no
  /// reader can observe half-done. A returned error is retryable: the
  /// staged epoch was aborted whole (store write refusal semantics), and
  /// re-calling with the same `t` is safe. `trace` (nullable) is the
  /// enclosing publish attempt's context; implementations nest their
  /// stage/publish spans under it.
  ///
  /// `dirty` (nullable) carries the ingestor's per-layer dirty-tile sets
  /// of `t` vs. the previously published timestep, indexed [layer-1]
  /// like `frames`: implementations use it to stage copy-on-write deltas
  /// (clean tiles alias the prior timestep's buffers, dirty tiles copy)
  /// instead of full frames. Null — or an empty/unknown per-layer entry
  /// — means "assume everything changed"; the published values are
  /// identical either way, only staging cost differs.
  virtual Status StageAndPublish(int64_t t,
                                 const std::vector<Tensor>& frames,
                                 const DirtyTileSets* dirty,
                                 bool carry_forward,
                                 TraceContext* trace) = 0;

  /// \brief Convenience for pre-dirty-tracking callers: stage everything
  /// fresh.
  Status StageAndPublish(int64_t t, const std::vector<Tensor>& frames,
                         bool carry_forward, TraceContext* trace) {
    return StageAndPublish(t, frames, nullptr, carry_forward, trace);
  }
};

}  // namespace one4all

#endif  // ONE4ALL_SERVE_EPOCH_SINK_H_
