#include "serve/telemetry.h"

#include <algorithm>
#include <cmath>

namespace one4all {

namespace {
// Geometric bucket layout: bucket b covers (kBase*kFactor^b, next].
constexpr double kBaseMicros = 0.5;
constexpr double kFactor = 1.19;
const double kInvLogFactor = 1.0 / std::log(kFactor);
}  // namespace

int LatencyHistogram::BucketFor(double micros) {
  if (!(micros > kBaseMicros)) return 0;
  const int bucket =
      static_cast<int>(std::log(micros / kBaseMicros) * kInvLogFactor) + 1;
  return std::min(bucket, kNumBuckets - 1);
}

double LatencyHistogram::BucketUpperMicros(int bucket) {
  return kBaseMicros * std::pow(kFactor, bucket);
}

void LatencyHistogram::Record(double micros) {
  micros = std::max(micros, 0.0);
  buckets_[static_cast<size_t>(BucketFor(micros))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_nanos_.fetch_add(static_cast<int64_t>(micros * 1e3),
                         std::memory_order_relaxed);
}

double LatencyHistogram::PercentileMicros(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  std::array<int64_t, kNumBuckets> snapshot;
  int64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    snapshot[static_cast<size_t>(b)] =
        buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    total += snapshot[static_cast<size_t>(b)];
  }
  if (total == 0) return 0.0;
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(q * static_cast<double>(total))));
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += snapshot[static_cast<size_t>(b)];
    if (seen >= rank) return BucketUpperMicros(b);
  }
  return BucketUpperMicros(kNumBuckets - 1);
}

double LatencyHistogram::total_micros() const {
  return static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) /
         1e3;
}

double LatencyHistogram::MeanMicros() const {
  const int64_t n = count();
  return n == 0 ? 0.0 : total_micros() / static_cast<double>(n);
}

void LatencyHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_nanos_.store(0, std::memory_order_relaxed);
}

ServingTelemetrySnapshot ServingTelemetry::Snapshot() const {
  ServingTelemetrySnapshot snap;
  snap.queries_served = queries_served.load(std::memory_order_relaxed);
  snap.queries_failed = queries_failed.load(std::memory_order_relaxed);
  snap.queries_rejected = queries_rejected.load(std::memory_order_relaxed);
  snap.batches_admitted = batches_admitted.load(std::memory_order_relaxed);
  snap.batches_rejected = batches_rejected.load(std::memory_order_relaxed);
  snap.epochs_published = epochs_published.load(std::memory_order_relaxed);
  snap.epochs_reclaimed = epochs_reclaimed.load(std::memory_order_relaxed);
  snap.frames_staged = frames_staged.load(std::memory_order_relaxed);
  snap.sat_planes_built =
      sat_planes_built.load(std::memory_order_relaxed);
  snap.publish_failures =
      publish_failures.load(std::memory_order_relaxed);
  for (int k = 0; k < kNumQuerySpecKinds; ++k) {
    snap.specs_by_kind[static_cast<size_t>(k)] =
        specs_by_kind[static_cast<size_t>(k)].load(
            std::memory_order_relaxed);
  }
  snap.query_p50_micros = query_latency.PercentileMicros(0.50);
  snap.query_p99_micros = query_latency.PercentileMicros(0.99);
  snap.query_mean_micros = query_latency.MeanMicros();
  snap.publish_p50_micros = publish_latency.PercentileMicros(0.50);
  snap.publish_p99_micros = publish_latency.PercentileMicros(0.99);
  return snap;
}

void ServingTelemetry::Reset() {
  queries_served.store(0, std::memory_order_relaxed);
  queries_failed.store(0, std::memory_order_relaxed);
  queries_rejected.store(0, std::memory_order_relaxed);
  batches_admitted.store(0, std::memory_order_relaxed);
  batches_rejected.store(0, std::memory_order_relaxed);
  epochs_published.store(0, std::memory_order_relaxed);
  epochs_reclaimed.store(0, std::memory_order_relaxed);
  frames_staged.store(0, std::memory_order_relaxed);
  sat_planes_built.store(0, std::memory_order_relaxed);
  publish_failures.store(0, std::memory_order_relaxed);
  for (auto& counter : specs_by_kind) {
    counter.store(0, std::memory_order_relaxed);
  }
  query_latency.Reset();
  publish_latency.Reset();
}

TablePrinter ServingTelemetrySnapshot::Render(
    const std::string& title) const {
  TablePrinter table(title);
  table.SetHeader({"Counter", "Value"});
  table.AddRow({"queries served", std::to_string(queries_served)});
  table.AddRow({"queries failed", std::to_string(queries_failed)});
  table.AddRow({"queries rejected (admission)",
                std::to_string(queries_rejected)});
  table.AddRow({"batches admitted", std::to_string(batches_admitted)});
  table.AddRow({"batches rejected", std::to_string(batches_rejected)});
  table.AddRow({"epochs published", std::to_string(epochs_published)});
  table.AddRow({"epochs reclaimed", std::to_string(epochs_reclaimed)});
  table.AddRow({"frames staged", std::to_string(frames_staged)});
  table.AddRow({"SAT planes built", std::to_string(sat_planes_built)});
  table.AddRow({"publish failures (absorbed)",
                std::to_string(publish_failures)});
  table.AddSeparator();
  for (int k = 0; k < kNumQuerySpecKinds; ++k) {
    table.AddRow({std::string("specs ") +
                      QuerySpecKindName(static_cast<QuerySpecKind>(k)),
                  std::to_string(specs_by_kind[static_cast<size_t>(k)])});
  }
  table.AddSeparator();
  table.AddRow({"query p50 (us)", TablePrinter::Num(query_p50_micros, 1)});
  table.AddRow({"query p99 (us)", TablePrinter::Num(query_p99_micros, 1)});
  table.AddRow({"query mean (us)",
                TablePrinter::Num(query_mean_micros, 1)});
  table.AddRow({"publish p50 (us)",
                TablePrinter::Num(publish_p50_micros, 1)});
  table.AddRow({"publish p99 (us)",
                TablePrinter::Num(publish_p99_micros, 1)});
  return table;
}

}  // namespace one4all
