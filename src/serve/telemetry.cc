#include "serve/telemetry.h"

namespace one4all {

ServingTelemetry::ServingTelemetry() {
  registry_.RegisterCounter("one4all_queries_served",
                            "Queries answered with an OK response", "",
                            &queries_served);
  registry_.RegisterCounter("one4all_queries_failed",
                            "Admitted queries answered with an error", "",
                            &queries_failed);
  registry_.RegisterCounter("one4all_queries_rejected",
                            "Queries refused by admission control", "",
                            &queries_rejected);
  registry_.RegisterCounter("one4all_batches_admitted",
                            "Query batches past admission control", "",
                            &batches_admitted);
  registry_.RegisterCounter("one4all_batches_rejected",
                            "Query batches refused by admission control",
                            "", &batches_rejected);
  registry_.RegisterCounter("one4all_epochs_published",
                            "Epochs atomically published", "",
                            &epochs_published);
  registry_.RegisterCounter("one4all_epochs_reclaimed",
                            "Retired epoch generations reclaimed", "",
                            &epochs_reclaimed);
  registry_.RegisterCounter("one4all_frames_staged",
                            "Layer frames staged into epochs", "",
                            &frames_staged);
  registry_.RegisterCounter("one4all_sat_planes_built",
                            "Summed-area planes built alongside frames",
                            "", &sat_planes_built);
  registry_.RegisterCounter("one4all_stage_dirty_tiles",
                            "Tiles copied fresh by delta staging", "",
                            &stage_dirty_tiles);
  registry_.RegisterCounter("one4all_cow_shared_tiles",
                            "Tiles aliased copy-on-write from the "
                            "previous timestep",
                            "", &cow_shared_tiles);
  registry_.RegisterCounter("one4all_publish_failures",
                            "Publish attempts absorbed after a store "
                            "write refusal",
                            "", &publish_failures);
  for (int k = 0; k < kNumQuerySpecKinds; ++k) {
    registry_.RegisterCounter(
        "one4all_specs", "Executed query specs by kind",
        std::string("kind=\"") +
            QuerySpecKindName(static_cast<QuerySpecKind>(k)) + "\"",
        &specs_by_kind[static_cast<size_t>(k)]);
  }
  registry_.RegisterHistogram("one4all_query_latency_micros",
                              "Per-query response time in microseconds",
                              "", &query_latency);
  registry_.RegisterHistogram(
      "one4all_publish_latency_micros",
      "Per-epoch stage+publish latency in microseconds", "",
      &publish_latency);
}

ServingTelemetrySnapshot ServingTelemetry::Snapshot() const {
  ServingTelemetrySnapshot snap;
  snap.queries_served = queries_served.load(std::memory_order_relaxed);
  snap.queries_failed = queries_failed.load(std::memory_order_relaxed);
  snap.queries_rejected = queries_rejected.load(std::memory_order_relaxed);
  snap.batches_admitted = batches_admitted.load(std::memory_order_relaxed);
  snap.batches_rejected = batches_rejected.load(std::memory_order_relaxed);
  snap.epochs_published = epochs_published.load(std::memory_order_relaxed);
  snap.epochs_reclaimed = epochs_reclaimed.load(std::memory_order_relaxed);
  snap.frames_staged = frames_staged.load(std::memory_order_relaxed);
  snap.sat_planes_built =
      sat_planes_built.load(std::memory_order_relaxed);
  snap.stage_dirty_tiles =
      stage_dirty_tiles.load(std::memory_order_relaxed);
  snap.cow_shared_tiles =
      cow_shared_tiles.load(std::memory_order_relaxed);
  snap.publish_failures =
      publish_failures.load(std::memory_order_relaxed);
  for (int k = 0; k < kNumQuerySpecKinds; ++k) {
    snap.specs_by_kind[static_cast<size_t>(k)] =
        specs_by_kind[static_cast<size_t>(k)].load(
            std::memory_order_relaxed);
  }
  snap.query_p50_micros = query_latency.PercentileMicros(0.50);
  snap.query_p99_micros = query_latency.PercentileMicros(0.99);
  snap.query_mean_micros = query_latency.MeanMicros();
  snap.query_min_micros = query_latency.MinMicros();
  snap.query_max_micros = query_latency.MaxMicros();
  snap.publish_p50_micros = publish_latency.PercentileMicros(0.50);
  snap.publish_p99_micros = publish_latency.PercentileMicros(0.99);
  snap.publish_min_micros = publish_latency.MinMicros();
  snap.publish_max_micros = publish_latency.MaxMicros();
  return snap;
}

void ServingTelemetry::Reset() {
  queries_served.store(0, std::memory_order_relaxed);
  queries_failed.store(0, std::memory_order_relaxed);
  queries_rejected.store(0, std::memory_order_relaxed);
  batches_admitted.store(0, std::memory_order_relaxed);
  batches_rejected.store(0, std::memory_order_relaxed);
  epochs_published.store(0, std::memory_order_relaxed);
  epochs_reclaimed.store(0, std::memory_order_relaxed);
  frames_staged.store(0, std::memory_order_relaxed);
  sat_planes_built.store(0, std::memory_order_relaxed);
  stage_dirty_tiles.store(0, std::memory_order_relaxed);
  cow_shared_tiles.store(0, std::memory_order_relaxed);
  publish_failures.store(0, std::memory_order_relaxed);
  for (auto& counter : specs_by_kind) {
    counter.store(0, std::memory_order_relaxed);
  }
  query_latency.Reset();
  publish_latency.Reset();
}

TablePrinter ServingTelemetrySnapshot::Render(
    const std::string& title) const {
  TablePrinter table(title);
  table.SetHeader({"Counter", "Value"});
  table.AddRow({"queries served", std::to_string(queries_served)});
  table.AddRow({"queries failed", std::to_string(queries_failed)});
  table.AddRow({"queries rejected (admission)",
                std::to_string(queries_rejected)});
  table.AddRow({"batches admitted", std::to_string(batches_admitted)});
  table.AddRow({"batches rejected", std::to_string(batches_rejected)});
  table.AddRow({"epochs published", std::to_string(epochs_published)});
  table.AddRow({"epochs reclaimed", std::to_string(epochs_reclaimed)});
  table.AddRow({"frames staged", std::to_string(frames_staged)});
  table.AddRow({"SAT planes built", std::to_string(sat_planes_built)});
  table.AddRow({"stage dirty tiles", std::to_string(stage_dirty_tiles)});
  table.AddRow({"CoW shared tiles", std::to_string(cow_shared_tiles)});
  table.AddRow({"publish failures (absorbed)",
                std::to_string(publish_failures)});
  table.AddSeparator();
  for (int k = 0; k < kNumQuerySpecKinds; ++k) {
    table.AddRow({std::string("specs ") +
                      QuerySpecKindName(static_cast<QuerySpecKind>(k)),
                  std::to_string(specs_by_kind[static_cast<size_t>(k)])});
  }
  table.AddSeparator();
  table.AddRow({"query p50 (us)", TablePrinter::Num(query_p50_micros, 1)});
  table.AddRow({"query p99 (us)", TablePrinter::Num(query_p99_micros, 1)});
  table.AddRow({"query mean (us)",
                TablePrinter::Num(query_mean_micros, 1)});
  table.AddRow({"query min (us)", TablePrinter::Num(query_min_micros, 1)});
  table.AddRow({"query max (us)", TablePrinter::Num(query_max_micros, 1)});
  table.AddRow({"publish p50 (us)",
                TablePrinter::Num(publish_p50_micros, 1)});
  table.AddRow({"publish p99 (us)",
                TablePrinter::Num(publish_p99_micros, 1)});
  table.AddRow({"publish min (us)",
                TablePrinter::Num(publish_min_micros, 1)});
  table.AddRow({"publish max (us)",
                TablePrinter::Num(publish_max_micros, 1)});
  return table;
}

}  // namespace one4all
