// The online serving runtime façade (paper Sec. III, grown into a real
// continuously-running service): composes the stream ingestor, the
// epoch-versioned prediction store and the region query server behind
// one object. Query batches are admission-controlled (bounded in-flight
// budget, reject-with-Status on overload), pin one epoch for their whole
// duration (never observing torn half-synced timesteps), share a
// resolve cache that survives epoch rolls (resolution is
// time-independent), and feed a telemetry block of atomic counters and
// latency histograms.
#ifndef ONE4ALL_SERVE_SERVING_RUNTIME_H_
#define ONE4ALL_SERVE_SERVING_RUNTIME_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "query/query_executor.h"
#include "query/query_server.h"
#include "query/query_spec.h"
#include "query/resolved_query_cache.h"
#include "serve/epoch_manager.h"
#include "serve/stream_ingestor.h"

namespace one4all {

struct ServingRuntimeOptions {
  QueryStrategy strategy = QueryStrategy::kUnionSubtraction;
  /// Admission control: a batch is rejected outright (ResourceExhausted)
  /// when admitting it would push the in-flight query count past this.
  int64_t max_inflight_queries = 4096;
  /// Worker threads per batch (BatchOptions semantics: 0 = shared pool,
  /// 1 = caller's thread, > 1 = per-call pool).
  int num_query_threads = 0;
  /// Carry-forward retention horizon in timesteps; see
  /// FrameEpochManagerOptions::retain_timesteps. The default 0 keeps
  /// the whole served window queryable — right for bounded replays
  /// (tests, benches, demos), but per-epoch publish cost and store size
  /// then grow with uptime; continuous deployments should set a horizon
  /// sized to the timesteps their traffic actually queries.
  int64_t retain_timesteps = 0;
  /// Stage a summed-area plane with every published frame (see
  /// FrameEpochManagerOptions::build_sat_planes) so EvalPath::
  /// kSatFastPath specs answer rect-decomposable regions in O(#rects).
  bool build_sat_planes = true;
  ResolvedQueryCacheOptions cache;
  StreamIngestorOptions ingest;
  /// Span/trace sink shared by the query path, the ingestor and the
  /// epoch manager; null uses TraceRecorder::Global(). Benches inject a
  /// private recorder per phase; must outlive the runtime.
  TraceRecorder* trace = nullptr;
};

/// \brief One4All-ST online serving: streaming ingestion + epoch-
/// versioned frames + concurrent batched region queries.
class ServingRuntime {
 public:
  /// \param hierarchy,index,dataset Must outlive the runtime. `index` is
  /// the offline-built extended quad-tree (e.g. MauPipeline::index()).
  ServingRuntime(const Hierarchy* hierarchy, const ExtendedQuadTree* index,
                 const STDataset* dataset, FrameInference inference,
                 ServingRuntimeOptions options);
  ~ServingRuntime();

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// \brief Starts the background ingestion loop.
  void Start();
  /// \brief Stops ingestion (joins the background thread).
  void Stop();

  /// \brief Answers a batch of (region, t) queries against one pinned
  /// epoch. The whole batch is rejected with ResourceExhausted when it
  /// would exceed the in-flight budget; per-query failures (e.g. a
  /// timestep no published epoch covers yet) surface as that entry's
  /// Status without aborting anything. Counted as a kPointBatch spec;
  /// uses options().strategy.
  Result<std::vector<Result<QueryResponse>>> QueryBatch(
      const std::vector<BatchQuery>& queries);

  /// \brief Single-query convenience over the same admission/pin path.
  Result<QueryResponse> Query(const GridMask& region, int64_t t);

  /// \brief Composable entry point: plans and executes a typed QuerySpec
  /// (point / time-range / multi-region / top-k) through the same
  /// admission-control, epoch-pin and resolve-cache machinery as
  /// QueryBatch. The spec's own strategy is honored (factories default
  /// to Union & Subtraction). Admission cost is the plan's total
  /// (region, t) gather count; an over-budget spec is rejected whole
  /// with ResourceExhausted, an invalid one with InvalidArgument. Row
  /// latencies and per-kind spec counts land in the telemetry block.
  /// Taken by value so callers passing temporaries move the region set
  /// straight through to the plan, no mask copies.
  Result<QueryResult> ExecuteSpec(QuerySpec spec);

  /// \brief Pins the current epoch (tests, multi-batch consistency).
  EpochGuard PinEpoch() { return epochs_.Pin(); }

  /// \brief Swaps the quad-tree index (topology change, e.g. after a
  /// re-search). Resolutions depend on the index, so this invalidates
  /// the resolve cache — the only event that does; epoch rolls never do.
  void SwapIndex(const ExtendedQuadTree* index);

  ServingTelemetrySnapshot Telemetry() const {
    return telemetry_.Snapshot();
  }
  ServingTelemetry& telemetry() { return telemetry_; }
  /// \brief The recorder every layer of this runtime emits spans into.
  TraceRecorder& trace_recorder() { return *trace_; }
  ResolvedQueryCache& cache() { return cache_; }
  FrameEpochManager& epochs() { return epochs_; }
  StreamIngestor& ingestor() { return *ingestor_; }
  /// \brief The backing prediction store — exposed for fault injection
  /// (SetWriteFault) and storage assertions in tests/scenarios.
  PredictionStore& store() { return store_; }
  const ServingRuntimeOptions& options() const { return options_; }

 private:
  /// \brief Claims `cost` in-flight slots or rejects with
  /// ResourceExhausted. `num_queries` is what the rejection counters
  /// record — result rows, the same unit queries_served/failed use, so
  /// the telemetry block stays internally comparable even when a
  /// time-range row costs many gather slots. ReleaseQueries undoes an
  /// admitted claim.
  Status AdmitQueries(int64_t cost, int64_t num_queries);
  void ReleaseQueries(int64_t cost);

  /// \brief Records per-row outcomes (served/failed counts + response
  /// latency) into the telemetry block. Works for both row shapes —
  /// legacy QueryResponse and executor QueryRow.
  template <typename Row>
  void RecordRowOutcomes(const std::vector<Result<Row>>& rows) {
    int64_t served = 0, failed = 0;
    for (const auto& row : rows) {
      if (row.ok()) {
        ++served;
        telemetry_.query_latency.Record(row.ValueOrDie().response_micros);
      } else {
        ++failed;
      }
    }
    telemetry_.queries_served.fetch_add(served, std::memory_order_relaxed);
    telemetry_.queries_failed.fetch_add(failed, std::memory_order_relaxed);
  }

  const Hierarchy* hierarchy_;
  const STDataset* dataset_;
  ServingRuntimeOptions options_;
  TraceRecorder* trace_;  ///< never null (options.trace or Global())

  ServingTelemetry telemetry_;
  KvStore kv_;
  PredictionStore store_;
  FrameEpochManager epochs_;
  ResolvedQueryCache cache_;

  // The server is swapped whole on SwapIndex; queries hold the shared
  // side for the duration of a batch.
  mutable std::shared_mutex server_mu_;
  std::unique_ptr<RegionQueryServer> server_;

  std::unique_ptr<StreamIngestor> ingestor_;
  std::atomic<int64_t> inflight_{0};
};

}  // namespace one4all

#endif  // ONE4ALL_SERVE_SERVING_RUNTIME_H_
