// The online serving runtime façade (paper Sec. III, grown into a real
// continuously-running service): composes the stream ingestor, the
// epoch-versioned prediction store and the region query server behind
// one object. Query batches are admission-controlled (bounded in-flight
// budget, reject-with-Status on overload), pin one epoch for their whole
// duration (never observing torn half-synced timesteps), share a
// resolve cache that survives epoch rolls (resolution is
// time-independent), and feed a telemetry block of atomic counters and
// latency histograms.
#ifndef ONE4ALL_SERVE_SERVING_RUNTIME_H_
#define ONE4ALL_SERVE_SERVING_RUNTIME_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "query/query_executor.h"
#include "query/query_server.h"
#include "query/query_spec.h"
#include "query/resolved_query_cache.h"
#include "query/topk_memo.h"
#include "serve/epoch_manager.h"
#include "serve/stream_ingestor.h"
#include "shard/shard_set.h"

namespace one4all {

struct ServingRuntimeOptions {
  QueryStrategy strategy = QueryStrategy::kUnionSubtraction;
  /// Admission control: a batch is rejected outright (ResourceExhausted)
  /// when admitting it would push the in-flight query count past this.
  int64_t max_inflight_queries = 4096;
  /// Worker threads per batch (BatchOptions semantics: 0 = shared pool,
  /// 1 = caller's thread, > 1 = per-call pool).
  int num_query_threads = 0;
  /// Carry-forward retention horizon in timesteps; see
  /// FrameEpochManagerOptions::retain_timesteps. The default 0 keeps
  /// the whole served window queryable — right for bounded replays
  /// (tests, benches, demos), but per-epoch publish cost and store size
  /// then grow with uptime; continuous deployments should set a horizon
  /// sized to the timesteps their traffic actually queries.
  int64_t retain_timesteps = 0;
  /// Stage a summed-area plane with every published frame (see
  /// FrameEpochManagerOptions::build_sat_planes) so EvalPath::
  /// kSatFastPath specs answer rect-decomposable regions in O(#rects).
  bool build_sat_planes = true;
  ResolvedQueryCacheOptions cache;
  /// Spatial shard count. 1 (the default) serves from the single
  /// store/epoch-manager path, bit-for-bit as before. > 1 partitions the
  /// grid into that many contiguous row-band shards (shard/shard_map.h),
  /// each with its own store, epoch manager and resolve cache; the
  /// ingestor publishes all bands behind one epoch barrier and queries
  /// scatter-gather across them (results stay bit-identical to N=1).
  /// Clamped to the atomic grid height.
  int num_shards = 1;
  StreamIngestorOptions ingest;
  /// Span/trace sink shared by the query path, the ingestor and the
  /// epoch manager; null uses TraceRecorder::Global(). Benches inject a
  /// private recorder per phase; must outlive the runtime.
  TraceRecorder* trace = nullptr;
};

/// \brief One4All-ST online serving: streaming ingestion + epoch-
/// versioned frames + concurrent batched region queries.
class ServingRuntime {
 public:
  /// \param hierarchy,index,dataset Must outlive the runtime. `index` is
  /// the offline-built extended quad-tree (e.g. MauPipeline::index()).
  ServingRuntime(const Hierarchy* hierarchy, const ExtendedQuadTree* index,
                 const STDataset* dataset, FrameInference inference,
                 ServingRuntimeOptions options);
  ~ServingRuntime();

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// \brief Starts the background ingestion loop.
  void Start();
  /// \brief Stops ingestion (joins the background thread).
  void Stop();

  /// \brief Answers a batch of (region, t) queries against one pinned
  /// epoch. The whole batch is rejected with ResourceExhausted when it
  /// would exceed the in-flight budget; per-query failures (e.g. a
  /// timestep no published epoch covers yet) surface as that entry's
  /// Status without aborting anything. Counted as a kPointBatch spec;
  /// uses options().strategy.
  Result<std::vector<Result<QueryResponse>>> QueryBatch(
      const std::vector<BatchQuery>& queries);

  /// \brief Single-query convenience over the same admission/pin path.
  Result<QueryResponse> Query(const GridMask& region, int64_t t);

  /// \brief Composable entry point: plans and executes a typed QuerySpec
  /// (point / time-range / multi-region / top-k) through the same
  /// admission-control, epoch-pin and resolve-cache machinery as
  /// QueryBatch. The spec's own strategy is honored (factories default
  /// to Union & Subtraction). Admission cost is the plan's total
  /// (region, t) gather count; an over-budget spec is rejected whole
  /// with ResourceExhausted, an invalid one with InvalidArgument. Row
  /// latencies and per-kind spec counts land in the telemetry block.
  /// Taken by value so callers passing temporaries move the region set
  /// straight through to the plan, no mask copies.
  Result<QueryResult> ExecuteSpec(QuerySpec spec);

  /// \brief Pins the current epoch (tests, multi-batch consistency).
  /// Single-shard pin; sharded runtimes pin through shards()->PinAll().
  EpochGuard PinEpoch() { return epochs_.Pin(); }

  // -- Topology-agnostic serving-state facades ----------------------------
  // Callers that only ask "what is served / is it healthy / inject a
  // fault" go through these, so the same code drives a single epoch
  // manager or an N-shard barrier without branching.

  bool sharded() const { return shards_ != nullptr; }
  /// \brief Effective shard count (after ShardMap clamping); 1 unsharded.
  int num_shards() const {
    return shards_ != nullptr ? shards_->num_shards() : 1;
  }
  /// \brief Newest published timestep (-1: none). Sharded: the barrier's
  /// cross-shard published timestep.
  int64_t published_latest_t() const {
    return shards_ != nullptr ? shards_->published_latest_t()
                              : epochs_.published_latest_t();
  }
  /// \brief Live epochs (sharded: the max across shards — 1 means every
  /// shard reclaimed down to its published epoch).
  int64_t live_epochs() const {
    return shards_ != nullptr ? shards_->max_live_epochs()
                              : epochs_.live_epochs();
  }
  /// \brief Store write-fault injection across the whole topology (every
  /// shard's store, or the single store).
  void SetWriteFault(Status fault) {
    if (shards_ != nullptr) {
      shards_->SetWriteFault(std::move(fault));
    } else {
      store_.SetWriteFault(std::move(fault));
    }
  }
  void ClearWriteFault() {
    if (shards_ != nullptr) {
      shards_->ClearWriteFault();
    } else {
      store_.ClearWriteFault();
    }
  }
  /// \brief The cross-shard epoch-consistency invariant: no pin ever
  /// observed two timesteps, and all shards serve the same latest_t.
  /// Trivially true unsharded.
  bool CrossShardConsistent() const {
    return shards_ == nullptr || shards_->Consistent();
  }
  /// \brief Sharded only: wall ms since shard k's last barrier flip.
  double ShardPublishLagMs(int shard) const {
    return shards_ != nullptr ? shards_->PublishLagMs(shard) : 0.0;
  }
  /// \brief The shard fleet; null when num_shards == 1.
  ShardSet* shards() { return shards_.get(); }

  /// \brief Swaps the quad-tree index (topology change, e.g. after a
  /// re-search). Resolutions depend on the index, so this invalidates
  /// the resolve cache — the only event that does; epoch rolls never do.
  void SwapIndex(const ExtendedQuadTree* index);

  ServingTelemetrySnapshot Telemetry() const {
    return telemetry_.Snapshot();
  }
  ServingTelemetry& telemetry() { return telemetry_; }
  /// \brief The recorder every layer of this runtime emits spans into.
  TraceRecorder& trace_recorder() { return *trace_; }
  ResolvedQueryCache& cache() { return cache_; }
  /// \brief The incremental top-k ranking memo (subscription reuse
  /// stats, test hooks). Fed by the publish path, probed by ExecuteSpec.
  TopKMemo& topk_memo() { return topk_memo_; }
  FrameEpochManager& epochs() { return epochs_; }
  StreamIngestor& ingestor() { return *ingestor_; }
  /// \brief The backing prediction store — exposed for fault injection
  /// (SetWriteFault) and storage assertions in tests/scenarios.
  PredictionStore& store() { return store_; }
  const ServingRuntimeOptions& options() const { return options_; }

 private:
  /// \brief Claims `cost` in-flight slots or rejects with
  /// ResourceExhausted. `num_queries` is what the rejection counters
  /// record — result rows, the same unit queries_served/failed use, so
  /// the telemetry block stays internally comparable even when a
  /// time-range row costs many gather slots. ReleaseQueries undoes an
  /// admitted claim.
  Status AdmitQueries(int64_t cost, int64_t num_queries);
  void ReleaseQueries(int64_t cost);

  /// \brief Records per-row outcomes (served/failed counts + response
  /// latency) into the telemetry block. Works for both row shapes —
  /// legacy QueryResponse and executor QueryRow.
  template <typename Row>
  void RecordRowOutcomes(const std::vector<Result<Row>>& rows) {
    int64_t served = 0, failed = 0;
    for (const auto& row : rows) {
      if (row.ok()) {
        ++served;
        telemetry_.query_latency.Record(row.ValueOrDie().response_micros);
      } else {
        ++failed;
      }
    }
    telemetry_.queries_served.fetch_add(served, std::memory_order_relaxed);
    telemetry_.queries_failed.fetch_add(failed, std::memory_order_relaxed);
  }

  const Hierarchy* hierarchy_;
  const STDataset* dataset_;
  ServingRuntimeOptions options_;
  TraceRecorder* trace_;  ///< never null (options.trace or Global())

  ServingTelemetry telemetry_;
  PredictionStore store_;
  FrameEpochManager epochs_;
  ResolvedQueryCache cache_;
  TopKMemo topk_memo_;

  // The server is swapped whole on SwapIndex; queries hold the shared
  // side for the duration of a batch.
  mutable std::shared_mutex server_mu_;
  std::unique_ptr<RegionQueryServer> server_;

  /// Non-null iff options.num_shards > 1; then the ingestor publishes
  /// through the barrier and queries scatter-gather (the single
  /// store_/epochs_ pair above stays idle).
  std::unique_ptr<ShardSet> shards_;
  /// The ingestor's publish seam: forwards to the real sink (epochs_ or
  /// shards_) and feeds each published dirty set to the top-k memo.
  std::unique_ptr<EpochSink> publish_tap_;
  std::unique_ptr<StreamIngestor> ingestor_;
  std::atomic<int64_t> inflight_{0};
};

}  // namespace one4all

#endif  // ONE4ALL_SERVE_SERVING_RUNTIME_H_
