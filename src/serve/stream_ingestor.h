// Streaming timestep ingestion for the online serving runtime: consumes
// flow observations one timestep at a time (replayed from a dataset, as
// the stand-in for the paper's continuously-arriving traffic), maintains
// the rolling closeness/period/trend input window (Eq. 6), runs
// multi-scale inference on a background thread, and hands the resulting
// frame set to the FrameEpochManager as one atomically-published epoch
// per timestep.
#ifndef ONE4ALL_SERVE_STREAM_INGESTOR_H_
#define ONE4ALL_SERVE_STREAM_INGESTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "serve/epoch_manager.h"

namespace one4all {

class One4AllNet;  // model/one4all_net.h

/// \brief Maps one timestep plus its assembled input window to the
/// de-normalized multi-scale frame set (element l-1: [Hl, Wl]).
/// Implementations: the trained net (MakeOne4AllInference), ground-truth
/// aggregation for model-independent load tests
/// (MakeGroundTruthInference), or any custom callback.
using FrameInference = std::function<Result<std::vector<Tensor>>(
    int64_t t, const TemporalInput& input)>;

/// \brief Wraps One4AllNet::InferServingFrames; `net` and `dataset` must
/// outlive the returned callback.
FrameInference MakeOne4AllInference(const One4AllNet* net,
                                    const STDataset* dataset);

/// \brief Oracle inference: returns the dataset's ground-truth frames
/// aggregated to every layer. Model-independent serving load tests and
/// consistency checks (any exact-cover combination then reproduces the
/// region's true flow bit-for-bit).
FrameInference MakeGroundTruthInference(const STDataset* dataset);

/// \brief Rolling buffer of raw atomic observation frames, retaining
/// exactly the history the temporal feature construction needs (Eq. 6:
/// lc closeness + lp daily + lt weekly offsets).
class RollingWindow {
 public:
  RollingWindow(const TemporalFeatureSpec& spec, ScaleStats atomic_stats);

  /// \brief Ingests the observation of timestep `t` ([H, W] raw flows)
  /// and evicts frames that fell out of every window.
  void Push(int64_t t, Tensor frame);

  /// \brief True when every history offset of `t` is buffered.
  bool Ready(int64_t t) const;

  /// \brief Normalized model input for timestep `t` (batch size 1);
  /// FailedPrecondition when an offset is missing.
  Result<TemporalInput> AssembleInput(int64_t t) const;

  size_t buffered_frames() const { return frames_.size(); }

 private:
  Result<Tensor> Stack(const std::vector<int64_t>& offsets, int64_t t) const;

  TemporalFeatureSpec spec_;
  ScaleStats stats_;
  std::vector<int64_t> closeness_offsets_, period_offsets_, trend_offsets_;
  std::map<int64_t, Tensor> frames_;  ///< raw atomic frames by timestep
};

struct StreamIngestorOptions {
  /// First timestep to infer and publish; must leave a full history
  /// window inside the dataset (>= spec.MinHistory()).
  int64_t start_t = 0;
  /// Timesteps to ingest before finishing (0: none, useful for tests
  /// driving the epoch manager directly).
  int64_t num_timesteps = 0;
  /// Floor on the wall-clock spacing between consecutive epoch
  /// publishes; 0 publishes as fast as inference allows.
  int64_t min_publish_interval_ms = 0;
  /// Carry the previous epoch's frames into each new epoch, so queries
  /// on older timesteps keep working as the window advances.
  bool carry_forward = true;
  /// Manual stepping: the loop publishes nothing on its own — each
  /// publish attempt must be granted via GrantSteps(). The scenario
  /// harness drives ingestion on a virtual clock this way (one grant
  /// per cadence tick), which makes epoch progression deterministic
  /// while the ingestor still runs as a real background thread.
  bool manual_stepping = false;
  /// Span sink for per-attempt publish trees (infer → stage frames →
  /// publish); null uses TraceRecorder::Global(). Must outlive the
  /// ingestor.
  TraceRecorder* trace = nullptr;
};

/// \brief Background ingestion loop. Start() spawns the thread; Stop()
/// (or destruction) requests shutdown and joins.
class StreamIngestor {
 public:
  /// \param dataset Source of replayed observations; must outlive this.
  /// \param epochs Publication target (a FrameEpochManager, or a
  /// ShardSet flipping N band shards behind one barrier); must outlive
  /// this.
  /// \param telemetry Optional; must outlive this when non-null.
  StreamIngestor(const STDataset* dataset, FrameInference inference,
                 EpochSink* epochs, ServingTelemetry* telemetry,
                 StreamIngestorOptions options);
  ~StreamIngestor();

  StreamIngestor(const StreamIngestor&) = delete;
  StreamIngestor& operator=(const StreamIngestor&) = delete;

  void Start();
  void Stop();

  /// \brief Stalls the publish loop before its next attempt (the
  /// stalled-publisher fault seam): observations stop being consumed and
  /// no epoch publishes until Resume(). Already-started attempts finish.
  void Pause();
  void Resume();
  bool paused() const;

  /// \brief Permits `n` more publish attempts under manual_stepping
  /// (no-op credit otherwise; the free-running loop never waits on it).
  /// Each attempt — successful or refused by the store — consumes one
  /// permit, so a driver granting k permits knows exactly k attempts
  /// will have happened once WaitUntilAttempted(total) returns.
  void GrantSteps(int64_t n);

  /// \brief Blocks until an epoch with latest_t >= `t` has been
  /// published, or ingestion finished/stopped; true when reached.
  bool WaitUntilPublished(int64_t t);
  /// \brief Blocks until `n` publish attempts have completed (counting
  /// failures), or the loop finished/stopped; true when reached.
  bool WaitUntilAttempted(int64_t n);
  /// \brief Blocks until the ingest loop finishes its configured steps.
  void WaitUntilDone();

  bool done() const;
  int64_t steps_published() const;
  /// \brief Publish attempts so far, successful or not.
  int64_t steps_attempted() const;
  /// \brief First inference/ingest error (OK while healthy).
  Status status() const;
  /// \brief Status of the most recent publish attempt (the absorbed,
  /// retryable kind — store write refusals; OK after a success).
  Status last_publish_error() const;

 private:
  void Run();
  /// \brief Blocks until the next publish attempt may start (not paused,
  /// permit available under manual stepping). False on stop request.
  bool AwaitStepClearance();

  const STDataset* dataset_;
  FrameInference inference_;
  EpochSink* epochs_;
  ServingTelemetry* telemetry_;
  TraceRecorder* trace_;  ///< never null (options.trace or Global())
  StreamIngestorOptions options_;

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};

  mutable std::mutex mu_;
  std::condition_variable progress_cv_;
  /// Wakes the publish loop when Pause/Resume/GrantSteps/Stop changes
  /// what AwaitStepClearance is waiting on.
  std::condition_variable control_cv_;
  int64_t published_latest_t_ = -1;
  int64_t steps_published_ = 0;
  int64_t steps_attempted_ = 0;
  bool paused_ = false;
  int64_t step_permits_ = 0;
  bool done_ = false;
  Status status_;
  Status last_publish_error_;
};

}  // namespace one4all

#endif  // ONE4ALL_SERVE_STREAM_INGESTOR_H_
