#include "serve/serving_runtime.h"

#include <algorithm>
#include <utility>

#include "core/logging.h"
#include "query/query_planner.h"
#include "shard/shard_executor.h"

namespace one4all {

ServingRuntime::ServingRuntime(const Hierarchy* hierarchy,
                               const ExtendedQuadTree* index,
                               const STDataset* dataset,
                               FrameInference inference,
                               ServingRuntimeOptions options)
    : hierarchy_(hierarchy),
      dataset_(dataset),
      options_(options),
      trace_(options.trace != nullptr ? options.trace
                                      : &TraceRecorder::Global()),
      store_(&kv_),
      epochs_(&store_, &telemetry_,
              FrameEpochManagerOptions{-1, options.retain_timesteps,
                                       options.build_sat_planes, trace_}),
      cache_(options.cache) {
  O4A_CHECK(hierarchy != nullptr);
  O4A_CHECK(index != nullptr);
  O4A_CHECK(dataset != nullptr);
  O4A_CHECK_GT(options_.max_inflight_queries, 0);
  server_ = std::make_unique<RegionQueryServer>(hierarchy, index, &store_);
  if (options_.num_shards > 1) {
    ShardSetOptions shard_options;
    shard_options.retain_timesteps = options_.retain_timesteps;
    shard_options.build_sat_planes = options_.build_sat_planes;
    shard_options.cache = options_.cache;
    // Partition the configured resolve-cache capacity across shards so
    // turning sharding on does not silently multiply the cache budget.
    shard_options.cache.capacity = std::max<size_t>(
        options_.cache.capacity / static_cast<size_t>(options_.num_shards),
        64);
    shard_options.trace = trace_;
    shards_ = std::make_unique<ShardSet>(hierarchy, options_.num_shards,
                                         &telemetry_, shard_options);
  }
  StreamIngestorOptions ingest_options = options.ingest;
  ingest_options.trace = trace_;
  EpochSink* sink = shards_ != nullptr
                        ? static_cast<EpochSink*>(shards_.get())
                        : static_cast<EpochSink*>(&epochs_);
  ingestor_ = std::make_unique<StreamIngestor>(
      dataset, std::move(inference), sink, &telemetry_, ingest_options);
}

ServingRuntime::~ServingRuntime() { Stop(); }

void ServingRuntime::Start() { ingestor_->Start(); }

void ServingRuntime::Stop() { ingestor_->Stop(); }

Status ServingRuntime::AdmitQueries(int64_t cost, int64_t num_queries) {
  // Admission control: claim the request's slots with a check-then-claim
  // CAS loop — a rejected request never touches the counter, so an
  // oversized one cannot transiently inflate it and spuriously reject
  // concurrent admissible requests. Refusing the whole request beats
  // buffering unboundedly under overload.
  int64_t prior = inflight_.load(std::memory_order_relaxed);
  do {
    if (prior + cost > options_.max_inflight_queries) {
      telemetry_.queries_rejected.fetch_add(num_queries,
                                            std::memory_order_relaxed);
      telemetry_.batches_rejected.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "serving overloaded: " + std::to_string(prior) +
          " gather slots in flight, request of " + std::to_string(cost) +
          " exceeds budget of " +
          std::to_string(options_.max_inflight_queries));
    }
  } while (!inflight_.compare_exchange_weak(prior, prior + cost,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed));
  telemetry_.batches_admitted.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void ServingRuntime::ReleaseQueries(int64_t cost) {
  inflight_.fetch_sub(cost, std::memory_order_acq_rel);
}

Result<std::vector<Result<QueryResponse>>> ServingRuntime::QueryBatch(
    const std::vector<BatchQuery>& queries) {
  const int64_t n = static_cast<int64_t>(queries.size());
  TraceContext trace_ctx = trace_->StartTrace(SpanCategory::kQuery);
  ScopedSpan query_span(&trace_ctx, SpanName::kQuery, n);
  Status admitted;
  {
    ScopedSpan admission_span(&trace_ctx, SpanName::kAdmission, n);
    admitted = AdmitQueries(n, n);
  }
  O4A_RETURN_NOT_OK(admitted);
  telemetry_.CountSpec(QuerySpecKind::kPointBatch);

  std::vector<Result<QueryResponse>> results;
  if (shards_ != nullptr) {
    // Cross-shard pin through the barrier: the pin set holds one epoch
    // per shard, all serving the same timestep, for the whole batch.
    ShardPinSet pins = shards_->PinAll(&trace_ctx);
    ScopedSpan pin_span(&trace_ctx, SpanName::kEpochPin,
                        pins.generation(0));
    pin_span.Close();
    ShardExecutorOptions exec_options;
    exec_options.num_threads = options_.num_query_threads;
    exec_options.trace = &trace_ctx;
    std::shared_lock<std::shared_mutex> server_lock(server_mu_);
    ScopedSpan gather_span(&trace_ctx, SpanName::kGather, n);
    results = ShardExecutor(server_.get(), shards_.get())
                  .ExecuteBatch(queries, options_.strategy, pins,
                                exec_options);
  } else {
    // Pin one epoch for the whole batch: every frame read below goes
    // through its generation, so the batch can never mix a half-
    // published timestep into its answers.
    ScopedSpan pin_span(&trace_ctx, SpanName::kEpochPin);
    EpochGuard epoch = epochs_.Pin();
    pin_span.set_arg(epoch.generation());
    pin_span.Close();
    BatchOptions batch_options;
    batch_options.num_threads = options_.num_query_threads;
    batch_options.cache = &cache_;
    batch_options.generation = epoch.generation();
    std::shared_lock<std::shared_mutex> server_lock(server_mu_);
    ScopedSpan gather_span(&trace_ctx, SpanName::kGather, n);
    results = server_->BatchPredict(queries, options_.strategy,
                                    batch_options);
  }
  ReleaseQueries(n);
  RecordRowOutcomes(results);
  return results;
}

Result<QueryResponse> ServingRuntime::Query(const GridMask& region,
                                            int64_t t) {
  O4A_ASSIGN_OR_RETURN(std::vector<Result<QueryResponse>> results,
                       QueryBatch({BatchQuery{region, t}}));
  return results[0];
}

Result<QueryResult> ServingRuntime::ExecuteSpec(QuerySpec spec) {
  // Validate and admit BEFORE planning. Validation is O(regions) with no
  // allocation, so an invalid spec (the caller's bug, not overload)
  // never consumes budget — and an absurdly long time range is bounced
  // by admission before any per-plan work happens. The cost formula
  // matches QueryPlan::num_point_queries() for every spec shape: each of
  // the |regions| rows gathers the full selector range (dedup shares
  // resolutions, not gathers).
  O4A_RETURN_NOT_OK(spec.Validate(*hierarchy_));
  const int64_t num_rows = static_cast<int64_t>(spec.regions.size());
  const int64_t steps = spec.time.num_steps();
  TraceContext trace_ctx = trace_->StartTrace(SpanCategory::kQuery);
  ScopedSpan query_span(&trace_ctx, SpanName::kQuery, num_rows);
  // Overflow-safe cost: a product that cannot fit the budget is clamped
  // to just past it — guaranteed rejection without int64 wraparound.
  const int64_t cost =
      num_rows > options_.max_inflight_queries / steps
          ? options_.max_inflight_queries + 1
          : num_rows * steps;
  Status admitted;
  {
    ScopedSpan admission_span(&trace_ctx, SpanName::kAdmission, cost);
    admitted = AdmitQueries(cost, num_rows);
  }
  O4A_RETURN_NOT_OK(admitted);
  telemetry_.CountSpec(spec.kind);

  QueryPlanner planner(hierarchy_);
  Result<QueryPlan> plan = Status::Internal("not planned");
  {
    ScopedSpan plan_span(&trace_ctx, SpanName::kPlan, num_rows);
    plan = planner.Plan(std::move(spec));
  }
  if (!plan.ok()) {
    ReleaseQueries(cost);
    return plan.status();
  }

  QueryResult result;
  if (shards_ != nullptr) {
    // Same consistency contract, barrier edition: the pin set's shards
    // all serve one timestep, so a time-range answer can never mix two
    // barrier flips' frames — across shards or within one.
    ShardPinSet pins = shards_->PinAll(&trace_ctx);
    ScopedSpan pin_span(&trace_ctx, SpanName::kEpochPin,
                        pins.generation(0));
    pin_span.Close();
    ShardExecutorOptions exec_options;
    exec_options.num_threads = options_.num_query_threads;
    exec_options.trace = &trace_ctx;
    std::shared_lock<std::shared_mutex> server_lock(server_mu_);
    result = ShardExecutor(server_.get(), shards_.get())
                 .Execute(*plan, pins, exec_options);
  } else {
    // Same consistency contract as QueryBatch: one pinned epoch covers
    // every frame gather of the plan, so a time-range answer can never
    // mix two epochs' frames.
    ScopedSpan pin_span(&trace_ctx, SpanName::kEpochPin);
    EpochGuard epoch = epochs_.Pin();
    pin_span.set_arg(epoch.generation());
    pin_span.Close();
    QueryExecutorOptions exec_options;
    exec_options.num_threads = options_.num_query_threads;
    exec_options.cache = &cache_;
    exec_options.generation = epoch.generation();
    exec_options.trace = &trace_ctx;
    std::shared_lock<std::shared_mutex> server_lock(server_mu_);
    result = QueryExecutor(server_.get()).Execute(*plan, exec_options);
  }
  ReleaseQueries(cost);
  RecordRowOutcomes(result.rows);
  return result;
}

void ServingRuntime::SwapIndex(const ExtendedQuadTree* index) {
  O4A_CHECK(index != nullptr);
  {
    std::unique_lock<std::shared_mutex> server_lock(server_mu_);
    server_ = std::make_unique<RegionQueryServer>(hierarchy_, index,
                                                  &store_);
  }
  // Resolutions embed index lookups, so a topology swap is the one event
  // that clears the resolve cache (epoch rolls must not — resolution is
  // time-independent).
  cache_.Invalidate();
  if (shards_ != nullptr) shards_->InvalidateCaches();
}

}  // namespace one4all
