#include "serve/serving_runtime.h"

#include <utility>

#include "core/logging.h"

namespace one4all {

ServingRuntime::ServingRuntime(const Hierarchy* hierarchy,
                               const ExtendedQuadTree* index,
                               const STDataset* dataset,
                               FrameInference inference,
                               ServingRuntimeOptions options)
    : hierarchy_(hierarchy),
      dataset_(dataset),
      options_(options),
      store_(&kv_),
      epochs_(&store_, &telemetry_,
              FrameEpochManagerOptions{-1, options.retain_timesteps}),
      cache_(options.cache) {
  O4A_CHECK(hierarchy != nullptr);
  O4A_CHECK(index != nullptr);
  O4A_CHECK(dataset != nullptr);
  O4A_CHECK_GT(options_.max_inflight_queries, 0);
  server_ = std::make_unique<RegionQueryServer>(hierarchy, index, &store_);
  ingestor_ = std::make_unique<StreamIngestor>(
      dataset, std::move(inference), &epochs_, &telemetry_, options.ingest);
}

ServingRuntime::~ServingRuntime() { Stop(); }

void ServingRuntime::Start() { ingestor_->Start(); }

void ServingRuntime::Stop() { ingestor_->Stop(); }

Result<std::vector<Result<QueryResponse>>> ServingRuntime::QueryBatch(
    const std::vector<BatchQuery>& queries) {
  const int64_t n = static_cast<int64_t>(queries.size());
  // Admission control: claim the batch's slots with a check-then-claim
  // CAS loop — a rejected batch never touches the counter, so an
  // oversized request cannot transiently inflate it and spuriously
  // reject concurrent admissible batches. Refusing the whole batch
  // beats buffering unboundedly under overload.
  int64_t prior = inflight_.load(std::memory_order_relaxed);
  do {
    if (prior + n > options_.max_inflight_queries) {
      telemetry_.queries_rejected.fetch_add(n, std::memory_order_relaxed);
      telemetry_.batches_rejected.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "serving overloaded: " + std::to_string(prior) +
          " queries in flight, batch of " + std::to_string(n) +
          " exceeds budget of " +
          std::to_string(options_.max_inflight_queries));
    }
  } while (!inflight_.compare_exchange_weak(prior, prior + n,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed));
  telemetry_.batches_admitted.fetch_add(1, std::memory_order_relaxed);

  std::vector<Result<QueryResponse>> results;
  {
    // Pin one epoch for the whole batch: every frame read below goes
    // through its generation, so the batch can never mix a half-
    // published timestep into its answers.
    EpochGuard epoch = epochs_.Pin();
    BatchOptions batch_options;
    batch_options.num_threads = options_.num_query_threads;
    batch_options.cache = &cache_;
    batch_options.generation = epoch.generation();
    std::shared_lock<std::shared_mutex> server_lock(server_mu_);
    results = server_->BatchPredict(queries, options_.strategy,
                                    batch_options);
  }
  inflight_.fetch_sub(n, std::memory_order_acq_rel);

  int64_t served = 0, failed = 0;
  for (const auto& result : results) {
    if (result.ok()) {
      ++served;
      telemetry_.query_latency.Record(result.ValueOrDie().response_micros);
    } else {
      ++failed;
    }
  }
  telemetry_.queries_served.fetch_add(served, std::memory_order_relaxed);
  telemetry_.queries_failed.fetch_add(failed, std::memory_order_relaxed);
  return results;
}

Result<QueryResponse> ServingRuntime::Query(const GridMask& region,
                                            int64_t t) {
  O4A_ASSIGN_OR_RETURN(std::vector<Result<QueryResponse>> results,
                       QueryBatch({BatchQuery{region, t}}));
  return results[0];
}

void ServingRuntime::SwapIndex(const ExtendedQuadTree* index) {
  O4A_CHECK(index != nullptr);
  {
    std::unique_lock<std::shared_mutex> server_lock(server_mu_);
    server_ = std::make_unique<RegionQueryServer>(hierarchy_, index,
                                                  &store_);
  }
  // Resolutions embed index lookups, so a topology swap is the one event
  // that clears the resolve cache (epoch rolls must not — resolution is
  // time-independent).
  cache_.Invalidate();
}

}  // namespace one4all
