#include "serve/serving_runtime.h"

#include <algorithm>
#include <utility>

#include "core/logging.h"
#include "core/stopwatch.h"
#include "query/query_planner.h"
#include "shard/shard_executor.h"

namespace one4all {

namespace {

/// The publish seam between the ingestor and the real epoch substrate:
/// forwards untouched, then — only after a successful publish — hands
/// the epoch's dirty sets to the top-k memo so subscription re-ranks
/// know which footprints the epoch could have moved.
class MemoTapSink : public EpochSink {
 public:
  MemoTapSink(EpochSink* inner, TopKMemo* memo)
      : inner_(inner), memo_(memo) {}

  Status StageAndPublish(int64_t t, const std::vector<Tensor>& frames,
                         const DirtyTileSets* dirty, bool carry_forward,
                         TraceContext* trace) override {
    Status status =
        inner_->StageAndPublish(t, frames, dirty, carry_forward, trace);
    if (status.ok()) memo_->OnPublish(t, dirty);
    return status;
  }
  using EpochSink::StageAndPublish;

 private:
  EpochSink* inner_;
  TopKMemo* memo_;
};

}  // namespace

ServingRuntime::ServingRuntime(const Hierarchy* hierarchy,
                               const ExtendedQuadTree* index,
                               const STDataset* dataset,
                               FrameInference inference,
                               ServingRuntimeOptions options)
    : hierarchy_(hierarchy),
      dataset_(dataset),
      options_(options),
      trace_(options.trace != nullptr ? options.trace
                                      : &TraceRecorder::Global()),
      epochs_(&store_, &telemetry_,
              FrameEpochManagerOptions{-1, options.retain_timesteps,
                                       options.build_sat_planes, trace_}),
      cache_(options.cache),
      topk_memo_(hierarchy) {
  O4A_CHECK(hierarchy != nullptr);
  O4A_CHECK(index != nullptr);
  O4A_CHECK(dataset != nullptr);
  O4A_CHECK_GT(options_.max_inflight_queries, 0);
  server_ = std::make_unique<RegionQueryServer>(hierarchy, index, &store_);
  if (options_.num_shards > 1) {
    ShardSetOptions shard_options;
    shard_options.retain_timesteps = options_.retain_timesteps;
    shard_options.build_sat_planes = options_.build_sat_planes;
    shard_options.cache = options_.cache;
    // Partition the configured resolve-cache capacity across shards so
    // turning sharding on does not silently multiply the cache budget.
    shard_options.cache.capacity = std::max<size_t>(
        options_.cache.capacity / static_cast<size_t>(options_.num_shards),
        64);
    shard_options.trace = trace_;
    shards_ = std::make_unique<ShardSet>(hierarchy, options_.num_shards,
                                         &telemetry_, shard_options);
  }
  StreamIngestorOptions ingest_options = options.ingest;
  ingest_options.trace = trace_;
  EpochSink* sink = shards_ != nullptr
                        ? static_cast<EpochSink*>(shards_.get())
                        : static_cast<EpochSink*>(&epochs_);
  publish_tap_ = std::make_unique<MemoTapSink>(sink, &topk_memo_);
  ingestor_ = std::make_unique<StreamIngestor>(dataset, std::move(inference),
                                               publish_tap_.get(),
                                               &telemetry_, ingest_options);
}

ServingRuntime::~ServingRuntime() { Stop(); }

void ServingRuntime::Start() { ingestor_->Start(); }

void ServingRuntime::Stop() { ingestor_->Stop(); }

Status ServingRuntime::AdmitQueries(int64_t cost, int64_t num_queries) {
  // Admission control: claim the request's slots with a check-then-claim
  // CAS loop — a rejected request never touches the counter, so an
  // oversized one cannot transiently inflate it and spuriously reject
  // concurrent admissible requests. Refusing the whole request beats
  // buffering unboundedly under overload.
  int64_t prior = inflight_.load(std::memory_order_relaxed);
  do {
    if (prior + cost > options_.max_inflight_queries) {
      telemetry_.queries_rejected.fetch_add(num_queries,
                                            std::memory_order_relaxed);
      telemetry_.batches_rejected.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "serving overloaded: " + std::to_string(prior) +
          " gather slots in flight, request of " + std::to_string(cost) +
          " exceeds budget of " +
          std::to_string(options_.max_inflight_queries));
    }
  } while (!inflight_.compare_exchange_weak(prior, prior + cost,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed));
  telemetry_.batches_admitted.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void ServingRuntime::ReleaseQueries(int64_t cost) {
  inflight_.fetch_sub(cost, std::memory_order_acq_rel);
}

Result<std::vector<Result<QueryResponse>>> ServingRuntime::QueryBatch(
    const std::vector<BatchQuery>& queries) {
  const int64_t n = static_cast<int64_t>(queries.size());
  TraceContext trace_ctx = trace_->StartTrace(SpanCategory::kQuery);
  ScopedSpan query_span(&trace_ctx, SpanName::kQuery, n);
  Status admitted;
  {
    ScopedSpan admission_span(&trace_ctx, SpanName::kAdmission, n);
    admitted = AdmitQueries(n, n);
  }
  O4A_RETURN_NOT_OK(admitted);
  telemetry_.CountSpec(QuerySpecKind::kPointBatch);

  std::vector<Result<QueryResponse>> results;
  if (shards_ != nullptr) {
    // Cross-shard pin through the barrier: the pin set holds one epoch
    // per shard, all serving the same timestep, for the whole batch.
    ShardPinSet pins = shards_->PinAll(&trace_ctx);
    ScopedSpan pin_span(&trace_ctx, SpanName::kEpochPin,
                        pins.generation(0));
    pin_span.Close();
    ShardExecutorOptions exec_options;
    exec_options.num_threads = options_.num_query_threads;
    exec_options.trace = &trace_ctx;
    std::shared_lock<std::shared_mutex> server_lock(server_mu_);
    ScopedSpan gather_span(&trace_ctx, SpanName::kGather, n);
    results = ShardExecutor(server_.get(), shards_.get())
                  .ExecuteBatch(queries, options_.strategy, pins,
                                exec_options);
  } else {
    // Pin one epoch for the whole batch: every frame read below goes
    // through its generation, so the batch can never mix a half-
    // published timestep into its answers.
    ScopedSpan pin_span(&trace_ctx, SpanName::kEpochPin);
    EpochGuard epoch = epochs_.Pin();
    pin_span.set_arg(epoch.generation());
    pin_span.Close();
    BatchOptions batch_options;
    batch_options.num_threads = options_.num_query_threads;
    batch_options.cache = &cache_;
    batch_options.generation = epoch.generation();
    std::shared_lock<std::shared_mutex> server_lock(server_mu_);
    ScopedSpan gather_span(&trace_ctx, SpanName::kGather, n);
    results = server_->BatchPredict(queries, options_.strategy,
                                    batch_options);
  }
  ReleaseQueries(n);
  RecordRowOutcomes(results);
  return results;
}

Result<QueryResponse> ServingRuntime::Query(const GridMask& region,
                                            int64_t t) {
  O4A_ASSIGN_OR_RETURN(std::vector<Result<QueryResponse>> results,
                       QueryBatch({BatchQuery{region, t}}));
  return results[0];
}

Result<QueryResult> ServingRuntime::ExecuteSpec(QuerySpec spec) {
  // Validate and admit BEFORE planning. Validation is O(regions) with no
  // allocation, so an invalid spec (the caller's bug, not overload)
  // never consumes budget — and an absurdly long time range is bounced
  // by admission before any per-plan work happens. The cost formula
  // matches QueryPlan::num_point_queries() for every spec shape: each of
  // the |regions| rows gathers the full selector range (dedup shares
  // resolutions, not gathers).
  O4A_RETURN_NOT_OK(spec.Validate(*hierarchy_));
  const int64_t num_rows = static_cast<int64_t>(spec.regions.size());
  const int64_t steps = spec.time.num_steps();
  const QuerySpecKind kind = spec.kind;
  TraceContext trace_ctx = trace_->StartTrace(SpanCategory::kQuery);
  ScopedSpan query_span(&trace_ctx, SpanName::kQuery, num_rows);

  // Incremental top-k: a point top-k re-issued at a later timestep
  // (the subscription pattern) probes the memo, which proves per row
  // whether any publish since the memoized evaluation touched its term
  // footprint. Clean rows carry their value over; only churned rows are
  // re-gathered (as a multi-region sub-spec), and the ranking is
  // re-sorted over the merged set. Unsharded only for now — the
  // sharded barrier does not feed the memo (see ROADMAP).
  const bool memo_eligible = shards_ == nullptr &&
                             kind == QuerySpecKind::kTopK &&
                             spec.time.IsPoint();
  TopKMemo::Probe probe;
  std::vector<int> stale_rows;
  if (memo_eligible) {
    probe = topk_memo_.Lookup(spec);
    if (probe.hit) {
      for (size_t i = 0; i < probe.clean.size(); ++i) {
        if (!probe.clean[i]) stale_rows.push_back(static_cast<int>(i));
      }
    }
  }
  const int64_t eval_rows =
      probe.hit ? static_cast<int64_t>(stale_rows.size()) : num_rows;

  // Overflow-safe cost: a product that cannot fit the budget is clamped
  // to just past it — guaranteed rejection without int64 wraparound.
  // Memo-clean rows gather nothing, so they claim no slots.
  const int64_t cost =
      eval_rows > options_.max_inflight_queries / steps
          ? options_.max_inflight_queries + 1
          : eval_rows * steps;
  Status admitted;
  {
    ScopedSpan admission_span(&trace_ctx, SpanName::kAdmission, cost);
    admitted = AdmitQueries(cost, num_rows);
  }
  O4A_RETURN_NOT_OK(admitted);
  telemetry_.CountSpec(kind);

  if (probe.hit && stale_rows.empty()) {
    // Every row provably unchanged: rank the memoized values and answer
    // without touching the store at all.
    QueryResult result;
    result.kind = QuerySpecKind::kTopK;
    result.rows = std::move(probe.rows);
    {
      ScopedSpan rank_span(&trace_ctx, SpanName::kRank, spec.top_k);
      Stopwatch rank_timer;
      result.top_k = TopKMemo::RankRows(result.rows, spec.top_k);
      result.timings.rank_micros = rank_timer.ElapsedMicros();
    }
    topk_memo_.Store(spec, result.rows);  // re-anchor the entry at t
    topk_memo_.CountReuse(num_rows, 0);
    ReleaseQueries(cost);
    RecordRowOutcomes(result.rows);
    return result;
  }

  QuerySpec memo_spec;  // the original, kept for the post-exec Store
  if (memo_eligible) memo_spec = spec;
  if (probe.hit) {
    // Partial reuse: re-gather only the churned rows. A multi-region
    // sub-spec evaluates each region through the identical resolve /
    // gather / fold path, so merged values are bit-identical to a full
    // top-k execution; ranking happens after the merge.
    QuerySpec sub;
    sub.kind = QuerySpecKind::kMultiRegion;
    sub.regions.reserve(stale_rows.size());
    for (const int idx : stale_rows) {
      sub.regions.push_back(spec.regions[static_cast<size_t>(idx)]);
    }
    sub.time = spec.time;
    sub.aggregation = spec.aggregation;
    sub.strategy = spec.strategy;
    sub.eval_path = spec.eval_path;
    sub.keep_series = spec.keep_series;
    spec = std::move(sub);
  }

  QueryPlanner planner(hierarchy_);
  Result<QueryPlan> plan = Status::Internal("not planned");
  {
    ScopedSpan plan_span(&trace_ctx, SpanName::kPlan, num_rows);
    plan = planner.Plan(std::move(spec));
  }
  if (!plan.ok()) {
    ReleaseQueries(cost);
    return plan.status();
  }

  QueryResult result;
  if (shards_ != nullptr) {
    // Same consistency contract, barrier edition: the pin set's shards
    // all serve one timestep, so a time-range answer can never mix two
    // barrier flips' frames — across shards or within one.
    ShardPinSet pins = shards_->PinAll(&trace_ctx);
    ScopedSpan pin_span(&trace_ctx, SpanName::kEpochPin,
                        pins.generation(0));
    pin_span.Close();
    ShardExecutorOptions exec_options;
    exec_options.num_threads = options_.num_query_threads;
    exec_options.trace = &trace_ctx;
    std::shared_lock<std::shared_mutex> server_lock(server_mu_);
    result = ShardExecutor(server_.get(), shards_.get())
                 .Execute(*plan, pins, exec_options);
  } else {
    // Same consistency contract as QueryBatch: one pinned epoch covers
    // every frame gather of the plan, so a time-range answer can never
    // mix two epochs' frames.
    ScopedSpan pin_span(&trace_ctx, SpanName::kEpochPin);
    EpochGuard epoch = epochs_.Pin();
    pin_span.set_arg(epoch.generation());
    pin_span.Close();
    QueryExecutorOptions exec_options;
    exec_options.num_threads = options_.num_query_threads;
    exec_options.cache = &cache_;
    exec_options.generation = epoch.generation();
    exec_options.trace = &trace_ctx;
    std::shared_lock<std::shared_mutex> server_lock(server_mu_);
    result = QueryExecutor(server_.get()).Execute(*plan, exec_options);
  }
  if (probe.hit) {
    // Merge: memoized clean rows + freshly gathered churned rows, then
    // re-rank the full set with RankTopK's exact ordering.
    QueryResult merged;
    merged.kind = QuerySpecKind::kTopK;
    merged.rows = std::move(probe.rows);
    for (size_t j = 0; j < stale_rows.size(); ++j) {
      merged.rows[static_cast<size_t>(stale_rows[j])] =
          std::move(result.rows[j]);
    }
    merged.timings = result.timings;
    merged.cache_hits = result.cache_hits;
    merged.cache_misses = result.cache_misses;
    {
      ScopedSpan rank_span(&trace_ctx, SpanName::kRank, memo_spec.top_k);
      Stopwatch rank_timer;
      merged.top_k = TopKMemo::RankRows(merged.rows, memo_spec.top_k);
      merged.timings.rank_micros = rank_timer.ElapsedMicros();
    }
    topk_memo_.CountReuse(num_rows - eval_rows, eval_rows);
    result = std::move(merged);
  }
  if (memo_eligible) topk_memo_.Store(memo_spec, result.rows);
  ReleaseQueries(cost);
  RecordRowOutcomes(result.rows);
  return result;
}

void ServingRuntime::SwapIndex(const ExtendedQuadTree* index) {
  O4A_CHECK(index != nullptr);
  {
    std::unique_lock<std::shared_mutex> server_lock(server_mu_);
    server_ = std::make_unique<RegionQueryServer>(hierarchy_, index,
                                                  &store_);
  }
  // Resolutions embed index lookups, so a topology swap is the one event
  // that clears the resolve cache (epoch rolls must not — resolution is
  // time-independent). Memoized top-k values embed resolutions too.
  cache_.Invalidate();
  topk_memo_.Invalidate();
  if (shards_ != nullptr) shards_->InvalidateCaches();
}

}  // namespace one4all
