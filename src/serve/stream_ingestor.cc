#include "serve/stream_ingestor.h"

#include <chrono>
#include <utility>

#include "core/logging.h"
#include "core/stopwatch.h"
#include "model/one4all_net.h"
#include "tensor/gemm.h"

namespace one4all {

FrameInference MakeOne4AllInference(const One4AllNet* net,
                                    const STDataset* dataset) {
  O4A_CHECK(net != nullptr);
  O4A_CHECK(dataset != nullptr);
  return [net, dataset](int64_t t,
                        const TemporalInput& input) -> Result<std::vector<Tensor>> {
    (void)t;
    return net->InferServingFrames(input, *dataset);
  };
}

FrameInference MakeGroundTruthInference(const STDataset* dataset) {
  O4A_CHECK(dataset != nullptr);
  return [dataset](int64_t t,
                   const TemporalInput& input) -> Result<std::vector<Tensor>> {
    (void)input;
    if (t < 0 || t >= dataset->num_timesteps()) {
      return Status::OutOfRange("timestep outside the replayed dataset");
    }
    std::vector<Tensor> frames;
    const int n_layers = dataset->hierarchy().num_layers();
    frames.reserve(static_cast<size_t>(n_layers));
    for (int l = 1; l <= n_layers; ++l) {
      frames.push_back(dataset->FrameAtLayer(t, l));
    }
    return frames;
  };
}

// -- RollingWindow ----------------------------------------------------------

RollingWindow::RollingWindow(const TemporalFeatureSpec& spec,
                             ScaleStats atomic_stats)
    : spec_(spec), stats_(atomic_stats) {
  // Same offset order as STDataset::BuildInput (Eq. 6), so a net trained
  // on dataset-built inputs sees identical channel layout when served
  // from the rolling window.
  for (int64_t i = spec_.closeness_len; i >= 1; --i) {
    closeness_offsets_.push_back(i);
  }
  for (int64_t i = spec_.period_len; i >= 1; --i) {
    period_offsets_.push_back(i * spec_.daily_interval);
  }
  for (int64_t i = spec_.trend_len; i >= 1; --i) {
    trend_offsets_.push_back(i * spec_.weekly_interval);
  }
}

void RollingWindow::Push(int64_t t, Tensor frame) {
  O4A_CHECK_EQ(frame.ndim(), 2u);
  frames_[t] = std::move(frame);
  // Keep exactly the horizon future timesteps can still reference.
  const int64_t horizon = spec_.MinHistory();
  frames_.erase(frames_.begin(), frames_.lower_bound(t - horizon));
}

bool RollingWindow::Ready(int64_t t) const {
  const auto has_all = [&](const std::vector<int64_t>& offsets) {
    for (const int64_t offset : offsets) {
      if (frames_.find(t - offset) == frames_.end()) return false;
    }
    return true;
  };
  return has_all(closeness_offsets_) && has_all(period_offsets_) &&
         has_all(trend_offsets_);
}

Result<Tensor> RollingWindow::Stack(const std::vector<int64_t>& offsets,
                                    int64_t t) const {
  const int64_t len = static_cast<int64_t>(offsets.size());
  auto first = frames_.begin();
  if (first == frames_.end()) {
    return Status::FailedPrecondition("rolling window is empty");
  }
  const int64_t h = first->second.dim(0), w = first->second.dim(1);
  const float inv_std = 1.0f / stats_.stddev;
  Tensor out({1, len, h, w});
  for (int64_t k = 0; k < len; ++k) {
    const auto it = frames_.find(t - offsets[static_cast<size_t>(k)]);
    if (it == frames_.end()) {
      return Status::FailedPrecondition(
          "rolling window missing history for timestep " +
          std::to_string(t - offsets[static_cast<size_t>(k)]));
    }
    const float* src = it->second.data();
    float* dst = out.data() + k * h * w;
    for (int64_t i = 0; i < h * w; ++i) {
      dst[i] = (src[i] - stats_.mean) * inv_std;
    }
  }
  return out;
}

Result<TemporalInput> RollingWindow::AssembleInput(int64_t t) const {
  TemporalInput input;
  O4A_ASSIGN_OR_RETURN(input.closeness, Stack(closeness_offsets_, t));
  O4A_ASSIGN_OR_RETURN(input.period, Stack(period_offsets_, t));
  O4A_ASSIGN_OR_RETURN(input.trend, Stack(trend_offsets_, t));
  return input;
}

// -- StreamIngestor ---------------------------------------------------------

StreamIngestor::StreamIngestor(const STDataset* dataset,
                               FrameInference inference,
                               EpochSink* epochs,
                               ServingTelemetry* telemetry,
                               StreamIngestorOptions options)
    : dataset_(dataset),
      inference_(std::move(inference)),
      epochs_(epochs),
      telemetry_(telemetry),
      trace_(options.trace != nullptr ? options.trace
                                      : &TraceRecorder::Global()),
      options_(options) {
  O4A_CHECK(dataset != nullptr);
  O4A_CHECK(epochs != nullptr);
  O4A_CHECK(inference_ != nullptr);
  O4A_CHECK_GE(options_.start_t, dataset->spec().MinHistory());
  O4A_CHECK_LE(options_.start_t + options_.num_timesteps,
               dataset->num_timesteps());
}

StreamIngestor::~StreamIngestor() { Stop(); }

void StreamIngestor::Start() {
  O4A_CHECK(!thread_.joinable()) << "ingestor already started";
  {
    // Reset progress so a restart after Stop() does not report the
    // previous run's completion to done()/WaitUntil*() consumers.
    std::lock_guard<std::mutex> lock(mu_);
    published_latest_t_ = -1;
    steps_published_ = 0;
    steps_attempted_ = 0;
    paused_ = false;
    step_permits_ = 0;
    done_ = false;
    status_ = Status::OK();
    last_publish_error_ = Status::OK();
  }
  stop_requested_.store(false);
  thread_ = std::thread([this] { Run(); });
}

void StreamIngestor::Stop() {
  stop_requested_.store(true);
  control_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StreamIngestor::Pause() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
  }
  control_cv_.notify_all();
}

void StreamIngestor::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  control_cv_.notify_all();
}

bool StreamIngestor::paused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return paused_;
}

void StreamIngestor::GrantSteps(int64_t n) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    step_permits_ += n;
  }
  control_cv_.notify_all();
}

bool StreamIngestor::WaitUntilPublished(int64_t t) {
  std::unique_lock<std::mutex> lock(mu_);
  progress_cv_.wait(lock, [&] {
    return published_latest_t_ >= t || done_;
  });
  return published_latest_t_ >= t;
}

bool StreamIngestor::WaitUntilAttempted(int64_t n) {
  std::unique_lock<std::mutex> lock(mu_);
  progress_cv_.wait(lock, [&] { return steps_attempted_ >= n || done_; });
  return steps_attempted_ >= n;
}

void StreamIngestor::WaitUntilDone() {
  std::unique_lock<std::mutex> lock(mu_);
  progress_cv_.wait(lock, [&] { return done_; });
}

bool StreamIngestor::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

int64_t StreamIngestor::steps_published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steps_published_;
}

int64_t StreamIngestor::steps_attempted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return steps_attempted_;
}

Status StreamIngestor::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

Status StreamIngestor::last_publish_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_publish_error_;
}

bool StreamIngestor::AwaitStepClearance() {
  std::unique_lock<std::mutex> lock(mu_);
  control_cv_.wait(lock, [&] {
    if (stop_requested_.load(std::memory_order_relaxed)) return true;
    if (paused_) return false;
    return !options_.manual_stepping || step_permits_ > 0;
  });
  if (stop_requested_.load(std::memory_order_relaxed)) return false;
  if (options_.manual_stepping) --step_permits_;
  return true;
}

void StreamIngestor::Run() {
  // Inference kernels fan out over the shared compute pool, same as the
  // trainer and the offline ingest (sequential if this were ever run on
  // a pool worker).
  ScopedComputePool scoped_pool(ResolveComputePool());

  RollingWindow window(dataset_->spec(), dataset_->StatsOfLayer(1));
  // Prime with the history the first served timestep needs.
  for (int64_t t = options_.start_t - dataset_->spec().MinHistory();
       t < options_.start_t; ++t) {
    window.Push(t, dataset_->FrameAtLayer(t, 1));
  }

  auto next_publish = std::chrono::steady_clock::now();
  // The frame set of the last *successfully published* timestep: the
  // diffing baseline of dirty-tile tracking. Diffing against it is
  // exactly consistent with the store's copy-on-write base — the
  // carried-forward previous timestep — so clean tiles alias buffers
  // with bit-identical content. Empty until the first publish (and
  // across retries of the same timestep, which re-diff unchanged).
  std::vector<Tensor> prev_frames;
  int64_t step = 0;
  while (step < options_.num_timesteps) {
    // Clearance gates each publish *attempt*: the pause seam (stalled-
    // publisher fault) and, under manual stepping, the permit budget the
    // scenario clock hands out. A refused write below retries the same
    // timestep, so every retry costs a fresh clearance too.
    if (!AwaitStepClearance()) break;
    const int64_t t = options_.start_t + step;

    // The whole attempt is one kPublishEpoch trace (arg: timestep) with
    // infer / stage-frames / publish child spans. Scoped to close before
    // the pacing sleep below, so publish spans measure work, not cadence.
    Stopwatch publish_timer;
    Status publish_status;
    bool fatal = false;
    {
      TraceContext trace_ctx = trace_->StartTrace(SpanCategory::kEpoch);
      ScopedSpan epoch_span(&trace_ctx, SpanName::kPublishEpoch, t);

      // One observation arrives... (Push overwrites idempotently, so the
      // re-push on a retried timestep is harmless.)
      window.Push(t, dataset_->FrameAtLayer(t, 1));
      auto input = window.AssembleInput(t);
      if (!input.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        status_ = input.status();
        fatal = true;
      }
      // ...the model turns it into the next multi-scale frame set...
      Result<std::vector<Tensor>> frames =
          Status::Internal("inference not attempted");
      if (!fatal) {
        ScopedSpan infer_span(&trace_ctx, SpanName::kInfer, t);
        frames = inference_(t, *input);
      }
      if (!fatal && !frames.ok()) {
        std::lock_guard<std::mutex> lock(mu_);
        status_ = frames.status();
        fatal = true;
      }

      // ...which becomes one atomically-published epoch. A store write
      // refusal is absorbed, not fatal: the half-staged shadow
      // generation is dropped whole (readers never saw it), the failure
      // is counted, and the same timestep is retried on the next
      // clearance. The sink decides the substrate — one epoch manager,
      // or N band shards flipped behind a barrier.
      if (!fatal) {
        // Dirty-tile tracking: diff this timestep's frames against the
        // previously published set so the sink stages only changed
        // tiles. Without carry-forward the previous timestep is never
        // in the new epoch, so there is no copy-on-write base and the
        // diff would be wasted work.
        DirtyTileSets dirty;
        const DirtyTileSets* dirty_ptr = nullptr;
        if (options_.carry_forward &&
            prev_frames.size() == frames->size() && !prev_frames.empty()) {
          dirty.reserve(frames->size());
          for (size_t i = 0; i < frames->size(); ++i) {
            dirty.push_back(DiffFrames((*frames)[i], prev_frames[i]));
          }
          dirty_ptr = &dirty;
        }
        publish_timer.Restart();
        publish_status = epochs_->StageAndPublish(
            t, *frames, dirty_ptr, options_.carry_forward, &trace_ctx);
        if (publish_status.ok()) prev_frames = std::move(*frames);
      }
    }
    if (fatal) break;

    if (publish_status.ok()) {
      if (telemetry_ != nullptr) {
        telemetry_->publish_latency.Record(publish_timer.ElapsedMicros());
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        published_latest_t_ = t;
        ++steps_published_;
        ++steps_attempted_;
        last_publish_error_ = Status::OK();
      }
      progress_cv_.notify_all();
      ++step;
      if (options_.min_publish_interval_ms > 0) {
        next_publish +=
            std::chrono::milliseconds(options_.min_publish_interval_ms);
        std::this_thread::sleep_until(next_publish);
      }
    } else {
      if (telemetry_ != nullptr) {
        telemetry_->publish_failures.fetch_add(1, std::memory_order_relaxed);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++steps_attempted_;
        last_publish_error_ = publish_status;
      }
      progress_cv_.notify_all();
      if (!options_.manual_stepping) {
        // Free-running mode would otherwise spin on a persistent fault;
        // manual mode instead waits for its next permit.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
  }
  progress_cv_.notify_all();
}

}  // namespace one4all
