// MVCC-style epoch-versioned publication of prediction frames (the
// paper's online phase under continuous synchronization): a writer
// stages the full multi-scale frame set of the next timestep under an
// unpublished shadow generation of the PredictionStore, then publishes
// it atomically. Readers pin the published epoch for the duration of a
// batch via the RAII EpochGuard and route every frame read through that
// generation, so they never observe a torn, half-synced timestep; a
// superseded epoch's frames are reclaimed from the KV store once its
// last reader unpins.
#ifndef ONE4ALL_SERVE_EPOCH_MANAGER_H_
#define ONE4ALL_SERVE_EPOCH_MANAGER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "kvstore/prediction_store.h"
#include "obs/trace.h"
#include "serve/epoch_sink.h"
#include "serve/telemetry.h"

namespace one4all {

class FrameEpochManager;

struct FrameEpochManagerOptions {
  /// Newest timestep already synced into generation 0 before the manager
  /// took over (-1: none).
  int64_t initial_latest_t = -1;
  /// Carry-forward retention horizon: when > 0, an epoch that stages
  /// timestep t serves exactly [t - retain_timesteps + 1, t] — older
  /// frames are not carried into the shadow generation, so a continuous
  /// run keeps per-publish copy cost and store size bounded by the
  /// horizon instead of growing with uptime. 0 carries the full served
  /// window forever.
  int64_t retain_timesteps = 0;
  /// Derive the summed-area plane of every staged frame into the same
  /// shadow generation (the query layer's SAT fast path reads them).
  /// Staged with the frame and before Publish, so a pinned epoch either
  /// has a frame's plane in full or (with this off) not at all — never a
  /// torn one; carry-forward and reclamation treat planes like frames.
  bool build_sat_planes = true;
  /// Span sink for reclaim events and staged-plane builds; null uses
  /// TraceRecorder::Global(). Must outlive the manager.
  TraceRecorder* trace = nullptr;
};

/// \brief RAII pin on one published epoch. While alive, every frame of
/// that epoch's generation stays readable (reclamation is deferred);
/// generation() is what a batch passes as BatchOptions::generation.
class EpochGuard {
 public:
  EpochGuard() = default;  ///< unpinned guard
  ~EpochGuard();
  EpochGuard(EpochGuard&& other) noexcept;
  EpochGuard& operator=(EpochGuard&& other) noexcept;
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  bool pinned() const { return manager_ != nullptr; }
  /// \brief PredictionStore generation of the pinned epoch.
  int64_t generation() const { return generation_; }
  /// \brief Newest timestep the pinned epoch serves (-1: none yet).
  int64_t latest_t() const { return latest_t_; }

  /// \brief Explicit early unpin (also done by the destructor).
  void Release();

 private:
  friend class FrameEpochManager;
  EpochGuard(FrameEpochManager* manager, int64_t generation,
             int64_t latest_t)
      : manager_(manager), generation_(generation), latest_t_(latest_t) {}

  FrameEpochManager* manager_ = nullptr;
  int64_t generation_ = 0;
  int64_t latest_t_ = -1;
};

/// \brief Epoch lifecycle over a generation-keyed PredictionStore.
///
/// Thread-safe: any number of concurrent Pin()/unpin cycles against one
/// staging/publishing writer (concurrent writers are also safe — the
/// last publish wins). Generation 0 is the initial published epoch; its
/// latest_t is whatever the constructor is told was pre-synced there.
class FrameEpochManager : public EpochSink {
 public:
  /// \param store Must outlive the manager.
  /// \param telemetry Optional counter sink (epochs published/reclaimed,
  /// frames staged); must outlive the manager when non-null.
  explicit FrameEpochManager(PredictionStore* store,
                             ServingTelemetry* telemetry = nullptr,
                             FrameEpochManagerOptions options = {});
  ~FrameEpochManager() override;

  FrameEpochManager(const FrameEpochManager&) = delete;
  FrameEpochManager& operator=(const FrameEpochManager&) = delete;

  /// \brief Move-only handle onto the shadow generation of one epoch
  /// under construction. Frames staged through it are invisible to every
  /// reader until Publish.
  class Staging {
   public:
    Staging() = default;
    /// \brief A dropped, still-valid staging aborts itself (its shadow
    /// frames are deleted, nothing is published).
    ~Staging();
    Staging(Staging&& other) noexcept { *this = std::move(other); }
    Staging& operator=(Staging&& other) noexcept {
      if (this != &other) {
        if (manager_ != nullptr) AbortSelf();
        manager_ = other.manager_;
        generation_ = other.generation_;
        latest_t_ = other.latest_t_;
        trace_ctx_ = other.trace_ctx_;
        other.manager_ = nullptr;
        other.trace_ctx_ = nullptr;
      }
      return *this;
    }
    Staging(const Staging&) = delete;
    Staging& operator=(const Staging&) = delete;

    bool valid() const { return manager_ != nullptr; }
    int64_t generation() const { return generation_; }

    /// \brief Writes one frame into the shadow generation. Dies if the
    /// store refuses the write; fault-tolerant writers use TryStageFrame.
    void StageFrame(int layer, int64_t t, const Tensor& frame,
                    const TileDirtySet* dirty = nullptr);

    /// \brief Non-fatal staging: surfaces a store write refusal as its
    /// Status instead of dying. On failure the shadow generation may
    /// hold a partial frame set — the caller must Abort (or drop) the
    /// staging, which deletes everything staged so far; since the
    /// generation was never published, no reader can have observed it.
    ///
    /// `dirty` (nullable) is the tile set of `frame` changed vs. the
    /// timestep t-1 already in this generation (the carried-forward
    /// previous publish): when given, the frame is staged copy-on-write
    /// and its SAT plane rebuilt incrementally (dirty tiles + carry
    /// fixup) — bit-identical to a full stage, at the dirty fraction of
    /// the cost. Null or unknown stages everything fresh.
    Status TryStageFrame(int layer, int64_t t, const Tensor& frame,
                         const TileDirtySet* dirty = nullptr);

    /// \brief Attaches the publish attempt's trace context so staged
    /// SAT-plane builds record kBuildSatPlane child spans. The context
    /// must outlive this staging; null (the default) records nothing.
    void set_trace(TraceContext* ctx) { trace_ctx_ = ctx; }

   private:
    friend class FrameEpochManager;
    Staging(FrameEpochManager* manager, int64_t generation,
            int64_t carried_latest_t)
        : manager_(manager),
          generation_(generation),
          latest_t_(carried_latest_t) {}

    void AbortSelf();

    FrameEpochManager* manager_ = nullptr;
    int64_t generation_ = 0;
    int64_t latest_t_ = -1;  ///< max staged (or carried) timestep
    TraceContext* trace_ctx_ = nullptr;  ///< not owned; may be null
  };

  /// \brief Opens the shadow generation of the next epoch. With
  /// `carry_forward`, it starts as a full snapshot of the currently
  /// published epoch's frames (raw blob copy), so publishing extends the
  /// served window by the newly staged timesteps; without, the epoch
  /// serves exactly what the writer stages.
  Staging BeginEpoch(bool carry_forward = true);

  /// \brief Atomically makes the staged epoch the published one. Readers
  /// pinning from now on see it; readers already pinned keep their old
  /// epoch until they unpin, at which point superseded epochs are
  /// dropped from the store.
  void Publish(Staging&& staging);

  /// \brief Discards a staged epoch without publishing.
  void Abort(Staging&& staging);

  /// \brief EpochSink: BeginEpoch + stage every layer frame (with
  /// kStageFrames/kPublish spans under `trace`, delta-staged per layer
  /// when `dirty` is given) + Publish; a store write refusal aborts the
  /// whole staging and is returned as the retryable Status the ingest
  /// loop absorbs.
  Status StageAndPublish(int64_t t, const std::vector<Tensor>& frames,
                         const DirtyTileSets* dirty, bool carry_forward,
                         TraceContext* trace) override;
  using EpochSink::StageAndPublish;

  /// \brief Pins the currently published epoch.
  EpochGuard Pin();

  int64_t published_generation() const;
  /// \brief Newest timestep of the published epoch (-1: none).
  int64_t published_latest_t() const;
  /// \brief Epochs still holding frames (published + pinned + staged).
  int64_t live_epochs() const;

 private:
  friend class EpochGuard;

  struct EpochState {
    int64_t latest_t = -1;
    int64_t pins = 0;
    bool retired = false;  ///< superseded; reclaim when pins hit 0
  };

  void Unpin(int64_t generation);
  /// \brief Drops reclaimable generations' frames; call without mu_.
  void Reclaim(const std::vector<int64_t>& generations);

  PredictionStore* store_;
  ServingTelemetry* telemetry_;
  TraceRecorder* trace_;  ///< never null (options.trace or Global())
  FrameEpochManagerOptions options_;
  mutable std::mutex mu_;
  int64_t next_generation_ = 1;
  int64_t published_ = 0;
  std::map<int64_t, EpochState> epochs_;  ///< live epochs by generation
};

}  // namespace one4all

#endif  // ONE4ALL_SERVE_EPOCH_MANAGER_H_
