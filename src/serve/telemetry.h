// Telemetry block of the online serving runtime: lock-free counters
// plus log-bucketed latency histograms, cheap enough to update on every
// query under concurrent load, snapshot-readable at any time, printable
// via core/table_printer — and registered under Prometheus-style names
// in an obs::MetricsRegistry so the same atomics back the text
// exposition and JSON dump.
#ifndef ONE4ALL_SERVE_TELEMETRY_H_
#define ONE4ALL_SERVE_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "core/table_printer.h"
#include "obs/metrics.h"
#include "query/query_spec.h"

namespace one4all {

/// \brief Point-in-time copy of every serving counter.
struct ServingTelemetrySnapshot {
  int64_t queries_served = 0;    ///< queries answered with an OK response
  int64_t queries_failed = 0;    ///< admitted but answered with an error
  int64_t queries_rejected = 0;  ///< refused by admission control
  int64_t batches_admitted = 0;
  int64_t batches_rejected = 0;
  int64_t epochs_published = 0;
  int64_t epochs_reclaimed = 0;
  int64_t frames_staged = 0;
  int64_t sat_planes_built = 0;  ///< summed-area planes staged with frames
  /// Tiles copied fresh by delta staging because their cells changed —
  /// together with cow_shared_tiles this measures the per-epoch churn
  /// the incremental publication path actually paid for.
  int64_t stage_dirty_tiles = 0;
  /// Tiles aliased from the previous timestep's frame/plane instead of
  /// copied (the copy-on-write savings of delta staging).
  int64_t cow_shared_tiles = 0;
  /// Publish attempts the ingestor aborted because the store refused a
  /// frame/plane write (fault injection, disk-full analogue). Each is an
  /// absorbed failure: the staging epoch was dropped whole and the
  /// timestep retried — readers never saw any of it.
  int64_t publish_failures = 0;
  /// Executed specs by QuerySpecKind (point / range / multi-region /
  /// top-k / legacy batch), indexed by static_cast<int>(kind).
  std::array<int64_t, kNumQuerySpecKinds> specs_by_kind{};
  double query_p50_micros = 0.0;  ///< per-query response time (paper sense)
  double query_p99_micros = 0.0;
  double query_mean_micros = 0.0;
  double query_min_micros = 0.0;  ///< fastest observed query
  double query_max_micros = 0.0;  ///< slowest observed query (true max)
  double publish_p50_micros = 0.0;  ///< stage+publish latency per epoch
  double publish_p99_micros = 0.0;
  double publish_min_micros = 0.0;
  double publish_max_micros = 0.0;

  /// \brief Fraction of admitted queries answered OK. Guarded: an idle
  /// runtime (nothing admitted yet) reports 0.0, never NaN.
  double query_success_rate() const {
    const int64_t admitted = queries_served + queries_failed;
    return admitted == 0 ? 0.0
                         : static_cast<double>(queries_served) /
                               static_cast<double>(admitted);
  }

  /// \brief Two-column counter table for operators.
  TablePrinter Render(const std::string& title = "Serving telemetry") const;
};

/// \brief Shared mutable telemetry: the runtime, ingestor and epoch
/// manager all write into one of these. Every member is individually
/// atomic; Snapshot() is a relaxed read of each (counters are
/// monotonic, so a snapshot is always a sane, if not instantaneous,
/// view). The constructor registers each member in registry() under a
/// `one4all_`-prefixed metric name, so ExpositionText()/JsonText() read
/// the very same atomics the snapshot does.
class ServingTelemetry {
 public:
  ServingTelemetry();
  ServingTelemetry(const ServingTelemetry&) = delete;
  ServingTelemetry& operator=(const ServingTelemetry&) = delete;

  Counter queries_served;
  Counter queries_failed;
  Counter queries_rejected;
  Counter batches_admitted;
  Counter batches_rejected;
  Counter epochs_published;
  Counter epochs_reclaimed;
  Counter frames_staged;
  Counter sat_planes_built;
  Counter stage_dirty_tiles;
  Counter cow_shared_tiles;
  Counter publish_failures;
  /// Executed specs by QuerySpecKind (legacy QueryBatch counts as
  /// kPointBatch), indexed by static_cast<int>(kind).
  std::array<Counter, kNumQuerySpecKinds> specs_by_kind{};
  LatencyHistogram query_latency;    ///< per-query response micros
  LatencyHistogram publish_latency;  ///< per-epoch stage+publish micros

  /// \brief One relaxed increment on the spec's kind counter.
  void CountSpec(QuerySpecKind kind) {
    specs_by_kind[static_cast<size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
  }

  ServingTelemetrySnapshot Snapshot() const;

  /// \brief Named-metric view of this telemetry block. Callers may
  /// register additional process metrics (trace-ring drops, cache
  /// stats) before scraping.
  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  /// \brief Zeroes every counter and histogram — bench warmup isolation:
  /// run the warmup storm, Reset(), then measure the steady state alone.
  /// Not atomic across counters; call while the runtime is quiescent.
  void Reset();

 private:
  MetricsRegistry registry_;
};

}  // namespace one4all

#endif  // ONE4ALL_SERVE_TELEMETRY_H_
