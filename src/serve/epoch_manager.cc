#include "serve/epoch_manager.h"

#include <algorithm>
#include <utility>

#include "core/logging.h"

namespace one4all {

// -- EpochGuard -------------------------------------------------------------

EpochGuard::~EpochGuard() { Release(); }

EpochGuard::EpochGuard(EpochGuard&& other) noexcept
    : manager_(other.manager_),
      generation_(other.generation_),
      latest_t_(other.latest_t_) {
  other.manager_ = nullptr;
}

EpochGuard& EpochGuard::operator=(EpochGuard&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    generation_ = other.generation_;
    latest_t_ = other.latest_t_;
    other.manager_ = nullptr;
  }
  return *this;
}

void EpochGuard::Release() {
  if (manager_ != nullptr) {
    manager_->Unpin(generation_);
    manager_ = nullptr;
  }
}

// -- FrameEpochManager::Staging ---------------------------------------------

FrameEpochManager::Staging::~Staging() {
  if (manager_ != nullptr) AbortSelf();
}

void FrameEpochManager::Staging::AbortSelf() {
  FrameEpochManager* manager = manager_;
  manager_ = nullptr;
  manager->Abort(Staging(manager, generation_, latest_t_));
}

void FrameEpochManager::Staging::StageFrame(int layer, int64_t t,
                                            const Tensor& frame,
                                            const TileDirtySet* dirty) {
  const Status status = TryStageFrame(layer, t, frame, dirty);
  O4A_CHECK(status.ok()) << "epoch staging failed: " << status.ToString();
}

Status FrameEpochManager::Staging::TryStageFrame(int layer, int64_t t,
                                                 const Tensor& frame,
                                                 const TileDirtySet* dirty) {
  O4A_CHECK(valid());
  const bool delta = dirty != nullptr && !dirty->empty();
  PredictionStore::StageStats stats;
  if (delta) {
    // Copy-on-write against the carried-forward previous timestep:
    // clean tiles alias (generation, layer, t-1)'s blocks. The store
    // falls back to a full fresh write when that base is absent.
    O4A_RETURN_NOT_OK(manager_->store_->TrySyncFrameDeltaAt(
        generation_, layer, t, frame, t - 1, *dirty, &stats));
  } else {
    O4A_RETURN_NOT_OK(
        manager_->store_->TrySyncFrameAt(generation_, layer, t, frame));
  }
  if (manager_->options_.build_sat_planes) {
    // Derived into the same still-unpublished shadow generation, so no
    // reader can observe the plane before its epoch publishes. A refusal
    // here leaves the frame without its plane — fine, because the only
    // recovery is aborting the staging, which drops both.
    if (delta) {
      ScopedSpan sat_span(trace_ctx_, SpanName::kTileSatFixup,
                          stats.frame_tiles_total -
                              stats.frame_tiles_shared);
      O4A_RETURN_NOT_OK(manager_->store_->TryBuildSatPlaneDeltaAt(
          generation_, layer, t, t - 1, /*pool=*/nullptr, &stats));
    } else {
      ScopedSpan sat_span(trace_ctx_, SpanName::kBuildSatPlane, layer);
      O4A_RETURN_NOT_OK(
          manager_->store_->TryBuildSatPlaneAt(generation_, layer, t));
    }
    if (manager_->telemetry_ != nullptr) {
      manager_->telemetry_->sat_planes_built.fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  latest_t_ = std::max(latest_t_, t);
  if (manager_->telemetry_ != nullptr) {
    manager_->telemetry_->frames_staged.fetch_add(
        1, std::memory_order_relaxed);
    if (delta) {
      manager_->telemetry_->stage_dirty_tiles.fetch_add(
          stats.frame_tiles_total - stats.frame_tiles_shared,
          std::memory_order_relaxed);
      manager_->telemetry_->cow_shared_tiles.fetch_add(
          stats.frame_tiles_shared + stats.plane_tiles_reused,
          std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

// -- FrameEpochManager ------------------------------------------------------

FrameEpochManager::FrameEpochManager(PredictionStore* store,
                                     ServingTelemetry* telemetry,
                                     FrameEpochManagerOptions options)
    : store_(store),
      telemetry_(telemetry),
      trace_(options.trace != nullptr ? options.trace
                                      : &TraceRecorder::Global()),
      options_(options) {
  O4A_CHECK(store != nullptr);
  epochs_[0] = EpochState{options.initial_latest_t, 0, false};
}

FrameEpochManager::~FrameEpochManager() = default;

FrameEpochManager::Staging FrameEpochManager::BeginEpoch(
    bool carry_forward) {
  int64_t generation = 0;
  int64_t source = -1;
  int64_t carried_latest = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    generation = next_generation_++;
    epochs_[generation] = EpochState{-1, 0, false};
    if (carry_forward) {
      source = published_;
      EpochState& state = epochs_.at(source);
      carried_latest = state.latest_t;
      // Hold the source pinned while its frames are copied so a
      // concurrent publish cannot reclaim it mid-copy.
      ++state.pins;
    }
  }
  if (source >= 0) {
    // +2: after the writer stages the next timestep (carried_latest + 1),
    // the published epoch serves exactly the retain_timesteps newest.
    const int64_t min_t = options_.retain_timesteps > 0
                              ? carried_latest - options_.retain_timesteps + 2
                              : INT64_MIN;
    store_->CopyGeneration(source, generation, min_t);
    Unpin(source);
  }
  return Staging(this, generation, carried_latest);
}

void FrameEpochManager::Publish(Staging&& staging) {
  O4A_CHECK(staging.valid());
  O4A_CHECK(staging.manager_ == this);
  const int64_t generation = staging.generation_;
  const int64_t latest_t = staging.latest_t_;
  staging.manager_ = nullptr;  // consumed; no abort on destruction

  // Enforce the retention horizon exactly, whatever the writer staged
  // (the carry-forward trim in BeginEpoch only bounds the copy for the
  // standard one-timestep-per-epoch cadence). Safe outside the lock:
  // the generation is still unpublished, so no reader can see it.
  if (options_.retain_timesteps > 0 && latest_t >= 0) {
    store_->DropFramesBelow(generation,
                            latest_t - options_.retain_timesteps + 1);
  }

  std::vector<int64_t> reclaimable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    EpochState& state = epochs_.at(generation);
    state.latest_t = latest_t;
    EpochState& old = epochs_.at(published_);
    old.retired = true;
    published_ = generation;
    for (auto it = epochs_.begin(); it != epochs_.end();) {
      if (it->second.retired && it->second.pins == 0) {
        reclaimable.push_back(it->first);
        it = epochs_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (telemetry_ != nullptr) {
    telemetry_->epochs_published.fetch_add(1, std::memory_order_relaxed);
  }
  Reclaim(reclaimable);
}

Status FrameEpochManager::StageAndPublish(int64_t t,
                                          const std::vector<Tensor>& frames,
                                          const DirtyTileSets* dirty,
                                          bool carry_forward,
                                          TraceContext* trace) {
  Staging staging = BeginEpoch(carry_forward);
  staging.set_trace(trace);
  Status status;
  {
    ScopedSpan stage_span(trace, SpanName::kStageFrames,
                          static_cast<int64_t>(frames.size()));
    for (size_t i = 0; i < frames.size() && status.ok(); ++i) {
      const TileDirtySet* layer_dirty =
          dirty != nullptr && i < dirty->size() ? &(*dirty)[i] : nullptr;
      status = staging.TryStageFrame(static_cast<int>(i) + 1, t, frames[i],
                                     layer_dirty);
    }
  }
  if (status.ok()) {
    ScopedSpan flip_span(trace, SpanName::kPublish);
    Publish(std::move(staging));
  }
  // else: `staging` aborts itself going out of scope.
  return status;
}

void FrameEpochManager::Abort(Staging&& staging) {
  if (!staging.valid()) return;
  O4A_CHECK(staging.manager_ == this);
  const int64_t generation = staging.generation_;
  staging.manager_ = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    O4A_CHECK(generation != published_);
    epochs_.erase(generation);
  }
  store_->DropGeneration(generation);
}

EpochGuard FrameEpochManager::Pin() {
  std::lock_guard<std::mutex> lock(mu_);
  EpochState& state = epochs_.at(published_);
  ++state.pins;
  return EpochGuard(this, published_, state.latest_t);
}

void FrameEpochManager::Unpin(int64_t generation) {
  std::vector<int64_t> reclaimable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = epochs_.find(generation);
    O4A_CHECK(it != epochs_.end());
    O4A_CHECK_GT(it->second.pins, 0);
    if (--it->second.pins == 0 && it->second.retired) {
      reclaimable.push_back(generation);
      epochs_.erase(it);
    }
  }
  Reclaim(reclaimable);
}

void FrameEpochManager::Reclaim(const std::vector<int64_t>& generations) {
  for (const int64_t generation : generations) {
    // Reclamation is its own root span (epoch category): it can run on a
    // publisher or on whichever reader thread unpins last, so it belongs
    // to no query/publish tree.
    TraceContext ctx = trace_->StartTrace(SpanCategory::kEpoch);
    ScopedSpan reclaim_span(&ctx, SpanName::kReclaim, generation);
    store_->DropGeneration(generation);
    if (telemetry_ != nullptr) {
      telemetry_->epochs_reclaimed.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

int64_t FrameEpochManager::published_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

int64_t FrameEpochManager::published_latest_t() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_.at(published_).latest_t;
}

int64_t FrameEpochManager::live_epochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(epochs_.size());
}

}  // namespace one4all
