// Online prediction storage: the deployed model continuously synchronizes
// multi-scale prediction frames into the KV store (paper Sec. III "online
// phase"); the query server reads single grid values back by key.
//
// Frames are keyed by (generation, layer, t). Generations are the MVCC
// substrate of the serving runtime (src/serve/epoch_manager.h): a writer
// stages the full frame set of the next epoch under an unpublished shadow
// generation while readers keep serving from the published one, so no
// reader ever observes a half-synced timestep. Generation 0 is the
// "static" generation the offline harness (MauPipeline) writes to; every
// pre-existing call site keeps working unchanged against it.
//
// Each frame may carry a derived summed-area plane (tensor/prefix_sum.h)
// under the same generation prefix, so the query layer's SAT fast path
// answers rect sums in four reads. Plane keys live *inside* the
// generation namespace on purpose: carry-forward copies and epoch
// reclamation treat a plane exactly like its frame, which is what keeps a
// pinned epoch's planes alive precisely as long as its frames.
#ifndef ONE4ALL_KVSTORE_PREDICTION_STORE_H_
#define ONE4ALL_KVSTORE_PREDICTION_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "core/status.h"
#include "kvstore/kvstore.h"
#include "tensor/prefix_sum.h"
#include "tensor/tensor.h"

namespace one4all {

class ThreadPool;

/// \brief Typed facade over KvStore for per-layer prediction frames.
class PredictionStore {
 public:
  explicit PredictionStore(KvStore* store) : store_(store) {}

  PredictionStore(const PredictionStore&) = delete;
  PredictionStore& operator=(const PredictionStore&) = delete;

  /// \brief Writes the prediction frame [Hl, Wl] of (layer, t) into
  /// generation 0.
  void SyncFrame(int layer, int64_t t, const Tensor& frame);

  /// \brief Writes a frame into an explicit generation. Serving writers
  /// stage whole epochs this way before publishing them atomically.
  /// Dies under an injected write fault — offline-harness convenience
  /// only; fault-tolerant writers use TrySyncFrameAt.
  void SyncFrameAt(int64_t generation, int layer, int64_t t,
                   const Tensor& frame);

  /// \brief Non-fatal frame write: returns the injected fault Status
  /// while SetWriteFault is active (the store-refuses-writes seam the
  /// scenario harness drives), OK and the write otherwise. The epoch
  /// staging path routes through this so an unwritable store surfaces
  /// as an aborted epoch, never a crash or a torn publish.
  Status TrySyncFrameAt(int64_t generation, int layer, int64_t t,
                        const Tensor& frame);

  /// \brief Reads a full frame back from generation 0.
  Result<Tensor> GetFrame(int layer, int64_t t) const;
  Result<Tensor> GetFrameAt(int64_t generation, int layer, int64_t t) const;

  /// \brief Point read of one grid's predicted value. Dies if the frame
  /// was never synced — only for offline harness code whose frames are
  /// synced up front; the serving path uses TryGetValue.
  float GetValue(int layer, int64_t t, int64_t row, int64_t col) const;

  /// \brief Non-fatal point read: NotFound when the frame was never
  /// synced (e.g. a query raced ahead of a late-arriving epoch),
  /// OutOfRange when (row, col) falls outside the frame.
  Result<float> TryGetValue(int layer, int64_t t, int64_t row,
                            int64_t col) const;
  Result<float> TryGetValueAt(int64_t generation, int layer, int64_t t,
                              int64_t row, int64_t col) const;

  bool HasFrame(int layer, int64_t t) const;
  bool HasFrameAt(int64_t generation, int layer, int64_t t) const;

  /// \brief Writes the summed-area plane of (generation, layer, t).
  /// Epoch writers stage a frame's plane right after the frame itself,
  /// into the same (still unpublished) generation. Dies under an
  /// injected write fault; see TrySyncSatPlaneAt.
  void SyncSatPlaneAt(int64_t generation, int layer, int64_t t,
                      const SatPlane& plane);

  /// \brief Non-fatal plane write; same fault contract as
  /// TrySyncFrameAt.
  Status TrySyncSatPlaneAt(int64_t generation, int layer, int64_t t,
                           const SatPlane& plane);

  /// \brief Reads a summed-area plane back; NotFound when the frame was
  /// synced without one (the query layer then falls back to summing the
  /// frame directly).
  Result<SatPlane> GetSatPlaneAt(int64_t generation, int layer,
                                 int64_t t) const;

  bool HasSatPlaneAt(int64_t generation, int layer, int64_t t) const;

  /// \brief Builds and stores the summed-area plane of every frame in a
  /// generation (offline harness: sync frames first, derive all planes
  /// in one pass). Returns the number of planes built.
  int64_t BuildSatPlanes(int64_t generation, ThreadPool* pool = nullptr);

  /// \brief Copies frames of `from` with t >= `min_t` into generation
  /// `to` (raw blob copy, no decode). The epoch manager's carry-forward:
  /// the shadow generation starts as a snapshot of the published one,
  /// optionally truncated to a retention horizon so continuous runs keep
  /// per-epoch copy cost bounded. Returns the number of frames copied.
  int64_t CopyGeneration(int64_t from, int64_t to,
                         int64_t min_t = INT64_MIN);

  /// \brief Deletes every frame of a generation (epoch reclamation once
  /// the last reader unpins it). Returns the number of frames dropped.
  int64_t DropGeneration(int64_t generation);

  /// \brief Deletes a generation's frames with t < `min_t` (retention
  /// trim of a still-unpublished shadow generation). Returns the number
  /// of frames dropped.
  int64_t DropFramesBelow(int64_t generation, int64_t min_t);

  /// \brief Number of frames stored under a generation (summed-area
  /// planes are derived data and not counted).
  int64_t NumFramesAt(int64_t generation) const;

  /// \brief Number of summed-area planes stored under a generation.
  int64_t NumSatPlanesAt(int64_t generation) const;

  /// \brief Key of (generation 0, layer, t).
  static std::string FrameKey(int layer, int64_t t);
  static std::string FrameKeyAt(int64_t generation, int layer, int64_t t);
  /// \brief Key of the summed-area plane of (generation, layer, t);
  /// sorts inside the generation prefix so CopyGeneration /
  /// DropGeneration / DropFramesBelow handle planes alongside frames.
  static std::string SatPlaneKeyAt(int64_t generation, int layer,
                                   int64_t t);
  /// \brief Prefix covering every key of one generation.
  static std::string GenerationPrefix(int64_t generation);
  /// \brief Prefix covering every summed-area plane of one generation.
  static std::string SatPlanePrefix(int64_t generation);

  /// \brief Injects a write fault: every TrySync* call returns `fault`
  /// (and every fatal Sync* dies) until ClearWriteFault. `fault` must be
  /// an error. Models a store that stopped accepting writes (full disk,
  /// lost quorum); reads are deliberately unaffected — the published
  /// epoch keeps serving while the writer absorbs failures.
  void SetWriteFault(Status fault);
  void ClearWriteFault();
  bool write_fault_active() const {
    return fault_active_.load(std::memory_order_acquire);
  }

 private:
  /// \brief The injected fault Status, or OK when writes are healthy.
  Status WriteFault() const;

  KvStore* store_;

  // Write-fault seam: flag checked on the hot path (one relaxed load),
  // Status only locked when a fault is actually set or read.
  std::atomic<bool> fault_active_{false};
  mutable std::mutex fault_mu_;
  Status fault_;
};

}  // namespace one4all

#endif  // ONE4ALL_KVSTORE_PREDICTION_STORE_H_
