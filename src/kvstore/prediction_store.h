// Online prediction storage: the deployed model continuously synchronizes
// multi-scale prediction frames into the store (paper Sec. III "online
// phase"); the query server reads grid values and summed-area planes back
// by (generation, layer, t).
//
// Generations are the MVCC substrate of the serving runtime
// (src/serve/epoch_manager.h): a writer stages the full frame set of the
// next epoch under an unpublished shadow generation while readers keep
// serving from the published one, so no reader ever observes a
// half-synced timestep. Generation 0 is the "static" generation the
// offline harness (MauPipeline) writes to; every pre-existing call site
// keeps working unchanged against it.
//
// Storage is tiled and copy-on-write (tensor/tiled_sat.h): a frame and
// its two-level summed-area plane live as shared tile blocks, so
//   - CopyGeneration (the epoch carry-forward) copies shared_ptrs, not
//     cell data — O(window) pointer aliasing per epoch;
//   - the delta staging path (TrySyncFrameDeltaAt +
//     TryBuildSatPlaneDeltaAt) copies only the tiles a dirty set marks,
//     aliasing every clean tile from the base timestep's entry — staging
//     a 5%-churn epoch copies ~5% of the data;
//   - reclamation (DropGeneration) is a map erase: a tile block is freed
//     when the last generation referencing it drops, which keeps a
//     pinned epoch's data alive precisely as long as its pins.
// Planes live *inside* the generation entry on purpose: carry-forward
// and reclamation treat a plane exactly like its frame.
#ifndef ONE4ALL_KVSTORE_PREDICTION_STORE_H_
#define ONE4ALL_KVSTORE_PREDICTION_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <tuple>

#include "core/status.h"
#include "tensor/prefix_sum.h"
#include "tensor/tensor.h"
#include "tensor/tiled_sat.h"

namespace one4all {

class ThreadPool;

/// \brief Generation-keyed tiled CoW store of per-layer prediction
/// frames and their summed-area planes.
class PredictionStore {
 public:
  PredictionStore() = default;

  PredictionStore(const PredictionStore&) = delete;
  PredictionStore& operator=(const PredictionStore&) = delete;

  /// \brief Tile accounting of one delta-staged frame/plane, fed into
  /// the stage_dirty_tiles / cow_shared_tiles telemetry counters.
  struct StageStats {
    int64_t frame_tiles_total = 0;
    int64_t frame_tiles_shared = 0;  ///< aliased from the base frame
    int64_t plane_tiles_reused = 0;  ///< locals aliased from the base plane
  };

  /// \brief Writes the prediction frame [Hl, Wl] of (layer, t) into
  /// generation 0.
  void SyncFrame(int layer, int64_t t, const Tensor& frame);

  /// \brief Writes a frame into an explicit generation. Serving writers
  /// stage whole epochs this way before publishing them atomically.
  /// Dies under an injected write fault — offline-harness convenience
  /// only; fault-tolerant writers use TrySyncFrameAt.
  void SyncFrameAt(int64_t generation, int layer, int64_t t,
                   const Tensor& frame);

  /// \brief Non-fatal frame write: returns the injected fault Status
  /// while SetWriteFault is active (the store-refuses-writes seam the
  /// scenario harness drives), OK and the write otherwise. The epoch
  /// staging path routes through this so an unwritable store surfaces
  /// as an aborted epoch, never a crash or a torn publish. Every tile
  /// is copied fresh; the frame's dirty set is recorded as unknown.
  Status TrySyncFrameAt(int64_t generation, int layer, int64_t t,
                        const Tensor& frame);

  /// \brief Copy-on-write frame write: tiles marked in `dirty` are
  /// copied from `frame`; clean tiles alias the blocks of the base
  /// entry (generation, layer, base_t) — the previous timestep the
  /// ingestor diffed `frame` against. Falls back to a full fresh write
  /// when the base is missing, geometry differs, or `dirty` is unknown
  /// (empty). Records `dirty` with the entry so downstream consumers
  /// (band slicing, incremental top-k) can reuse it.
  Status TrySyncFrameDeltaAt(int64_t generation, int layer, int64_t t,
                             const Tensor& frame, int64_t base_t,
                             const TileDirtySet& dirty,
                             StageStats* stats = nullptr);

  /// \brief Reads a full frame back from generation 0.
  Result<Tensor> GetFrame(int layer, int64_t t) const;
  Result<Tensor> GetFrameAt(int64_t generation, int layer, int64_t t) const;

  /// \brief Zero-copy tiled reads for the hot query path: a shared_ptr
  /// fetch under a shared lock, no materialization. The returned object
  /// outlives any concurrent reclamation of its generation.
  Result<std::shared_ptr<const TiledFrame>> GetTiledFrameAt(
      int64_t generation, int layer, int64_t t) const;
  Result<std::shared_ptr<const TiledSatPlane>> GetTiledSatPlaneAt(
      int64_t generation, int layer, int64_t t) const;

  /// \brief The dirty set recorded when (generation, layer, t) was
  /// delta-staged (tiles changed vs. its predecessor timestep), or null
  /// when the frame is missing or was staged without one — callers must
  /// then assume everything changed.
  std::shared_ptr<const TileDirtySet> GetDirtyAt(int64_t generation,
                                                 int layer, int64_t t) const;

  /// \brief Point read of one grid's predicted value. Dies if the frame
  /// was never synced — only for offline harness code whose frames are
  /// synced up front; the serving path uses TryGetValue.
  float GetValue(int layer, int64_t t, int64_t row, int64_t col) const;

  /// \brief Non-fatal point read: NotFound when the frame was never
  /// synced (e.g. a query raced ahead of a late-arriving epoch),
  /// OutOfRange when (row, col) falls outside the frame.
  Result<float> TryGetValue(int layer, int64_t t, int64_t row,
                            int64_t col) const;
  Result<float> TryGetValueAt(int64_t generation, int layer, int64_t t,
                              int64_t row, int64_t col) const;

  bool HasFrame(int layer, int64_t t) const;
  bool HasFrameAt(int64_t generation, int layer, int64_t t) const;

  /// \brief Builds and stores the two-level summed-area plane of the
  /// already-synced frame (generation, layer, t), every tile fresh.
  /// NotFound when the frame is missing; returns the injected fault
  /// Status while SetWriteFault is active (a plane build is a write).
  Status TryBuildSatPlaneAt(int64_t generation, int layer, int64_t t,
                            ThreadPool* pool = nullptr);

  /// \brief Incremental plane build: dirty tiles (the set recorded by
  /// TrySyncFrameDeltaAt) rebuild their local prefixes; clean tiles
  /// alias the base plane of (generation, layer, base_t); the coarse
  /// carries are recomputed in one deterministic fixup sweep — the
  /// result is bit-identical to TryBuildSatPlaneAt of the same frame.
  /// Falls back to a full build when the base plane is missing or the
  /// dirty set is unknown.
  Status TryBuildSatPlaneDeltaAt(int64_t generation, int layer, int64_t t,
                                 int64_t base_t, ThreadPool* pool = nullptr,
                                 StageStats* stats = nullptr);

  /// \brief Materialized monolithic plane, bit-identical to
  /// BuildSatPlane of the stored frame (legacy readers and parity
  /// tests; the query fast path reads GetTiledSatPlaneAt instead).
  /// NotFound when the frame was synced without a plane — the query
  /// layer then falls back to summing the frame directly.
  Result<SatPlane> GetSatPlaneAt(int64_t generation, int layer,
                                 int64_t t) const;

  bool HasSatPlaneAt(int64_t generation, int layer, int64_t t) const;

  /// \brief Builds and stores the summed-area plane of every frame in a
  /// generation (offline harness: sync frames first, derive all planes
  /// in one pass). Returns the number of planes built.
  int64_t BuildSatPlanes(int64_t generation, ThreadPool* pool = nullptr);

  /// \brief Copies frames of `from` with t >= `min_t` into generation
  /// `to` — shared_ptr aliasing of every tile block, no cell data moves.
  /// The epoch manager's carry-forward: the shadow generation starts as
  /// a snapshot of the published one, optionally truncated to a
  /// retention horizon so continuous runs keep per-epoch cost bounded.
  /// Returns the number of frames plus planes copied.
  int64_t CopyGeneration(int64_t from, int64_t to,
                         int64_t min_t = INT64_MIN);

  /// \brief Deletes every frame of a generation (epoch reclamation once
  /// the last reader unpins it); tile blocks free when their last
  /// referencing generation drops. Returns frames plus planes dropped.
  int64_t DropGeneration(int64_t generation);

  /// \brief Deletes a generation's frames with t < `min_t` (retention
  /// trim of a still-unpublished shadow generation). Returns frames
  /// plus planes dropped.
  int64_t DropFramesBelow(int64_t generation, int64_t min_t);

  /// \brief Number of frames stored under a generation (summed-area
  /// planes are derived data and not counted).
  int64_t NumFramesAt(int64_t generation) const;

  /// \brief Number of summed-area planes stored under a generation.
  int64_t NumSatPlanesAt(int64_t generation) const;

  /// \brief Injects a write fault: every TrySync*/TryBuild* call returns
  /// `fault` (and every fatal Sync* dies) until ClearWriteFault. `fault`
  /// must be an error. Models a store that stopped accepting writes
  /// (full disk, lost quorum); reads are deliberately unaffected — the
  /// published epoch keeps serving while the writer absorbs failures.
  void SetWriteFault(Status fault);
  void ClearWriteFault();
  bool write_fault_active() const {
    return fault_active_.load(std::memory_order_acquire);
  }

 private:
  /// \brief One stored (generation, layer, t): tiled CoW frame, its
  /// optional tiled plane, and the dirty set it was staged with (null
  /// when unknown).
  struct Entry {
    std::shared_ptr<const TiledFrame> frame;
    std::shared_ptr<const TiledSatPlane> plane;
    std::shared_ptr<const TileDirtySet> dirty;
  };
  using Key = std::tuple<int64_t, int, int64_t>;  // (generation, layer, t)

  /// \brief The injected fault Status, or OK when writes are healthy.
  Status WriteFault() const;

  /// \brief Copies one entry's shared_ptrs under the shared lock; false
  /// when absent.
  bool SnapshotEntry(const Key& key, Entry* out) const;

  mutable std::shared_mutex mu_;
  std::map<Key, Entry> entries_;

  // Write-fault seam: flag checked on the hot path (one relaxed load),
  // Status only locked when a fault is actually set or read.
  std::atomic<bool> fault_active_{false};
  mutable std::mutex fault_mu_;
  Status fault_;
};

}  // namespace one4all

#endif  // ONE4ALL_KVSTORE_PREDICTION_STORE_H_
