// Online prediction storage: the deployed model continuously synchronizes
// multi-scale prediction frames into the KV store (paper Sec. III "online
// phase"); the query server reads single grid values back by key.
#ifndef ONE4ALL_KVSTORE_PREDICTION_STORE_H_
#define ONE4ALL_KVSTORE_PREDICTION_STORE_H_

#include <string>

#include "kvstore/kvstore.h"
#include "tensor/tensor.h"

namespace one4all {

/// \brief Typed facade over KvStore for per-layer prediction frames.
class PredictionStore {
 public:
  explicit PredictionStore(KvStore* store) : store_(store) {}

  /// \brief Writes the prediction frame [Hl, Wl] of (layer, t).
  void SyncFrame(int layer, int64_t t, const Tensor& frame);

  /// \brief Reads a full frame back.
  Result<Tensor> GetFrame(int layer, int64_t t) const;

  /// \brief Point read of one grid's predicted value. Dies if the frame
  /// was never synced (programming error in the serving pipeline).
  float GetValue(int layer, int64_t t, int64_t row, int64_t col) const;

  bool HasFrame(int layer, int64_t t) const;

  static std::string FrameKey(int layer, int64_t t);

 private:
  KvStore* store_;
};

}  // namespace one4all

#endif  // ONE4ALL_KVSTORE_PREDICTION_STORE_H_
