#include "kvstore/kvstore.h"

#include <mutex>

namespace one4all {

void KvStore::Put(const std::string& key, std::string value) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  table_[key] = std::move(value);
}

Result<std::string> KvStore::Get(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) {
    return Status::NotFound("key not found: " + key);
  }
  return it->second;
}

bool KvStore::Contains(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return table_.count(key) > 0;
}

Status KvStore::Delete(const std::string& key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (table_.erase(key) == 0) {
    return Status::NotFound("key not found: " + key);
  }
  return Status::OK();
}

std::vector<std::pair<std::string, std::string>> KvStore::ScanPrefix(
    const std::string& prefix) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto it = table_.lower_bound(prefix); it != table_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.emplace_back(it->first, it->second);
  }
  return out;
}

size_t KvStore::CountPrefix(const std::string& prefix) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t count = 0;
  for (auto it = table_.lower_bound(prefix); it != table_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    ++count;
  }
  return count;
}

std::vector<std::string> KvStore::KeysWithPrefix(
    const std::string& prefix) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> keys;
  for (auto it = table_.lower_bound(prefix); it != table_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

size_t KvStore::DeletePrefix(const std::string& prefix) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto first = table_.lower_bound(prefix);
  auto last = first;
  size_t count = 0;
  while (last != table_.end() &&
         last->first.compare(0, prefix.size(), prefix) == 0) {
    ++last;
    ++count;
  }
  table_.erase(first, last);
  return count;
}

size_t KvStore::NumKeys() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return table_.size();
}

int64_t KvStore::ApproxBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  int64_t bytes = 0;
  for (const auto& [k, v] : table_) {
    bytes += static_cast<int64_t>(k.size() + v.size());
  }
  return bytes;
}

void KvStore::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  table_.clear();
}

}  // namespace one4all
