// In-memory key-value/table store: the stand-in for HBase (online
// serving) and Hive (offline training data) in the paper's system diagram
// (Fig. 4). Thread-safe; supports point get/put, prefix scans, and size
// accounting.
#ifndef ONE4ALL_KVSTORE_KVSTORE_H_
#define ONE4ALL_KVSTORE_KVSTORE_H_

#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/status.h"

namespace one4all {

/// \brief Ordered, thread-safe string KV store.
class KvStore {
 public:
  KvStore() = default;

  /// \brief Inserts or overwrites.
  void Put(const std::string& key, std::string value);

  /// \brief Point lookup.
  Result<std::string> Get(const std::string& key) const;
  bool Contains(const std::string& key) const;

  /// \brief Removes a key; NotFound if absent.
  Status Delete(const std::string& key);

  /// \brief All (key, value) pairs whose key starts with `prefix`,
  /// in key order.
  std::vector<std::pair<std::string, std::string>> ScanPrefix(
      const std::string& prefix) const;

  /// \brief Number of keys starting with `prefix` (no value copies).
  size_t CountPrefix(const std::string& prefix) const;

  /// \brief All keys starting with `prefix`, in order (no value copies).
  std::vector<std::string> KeysWithPrefix(const std::string& prefix) const;

  /// \brief Removes every key starting with `prefix` under one exclusive
  /// lock (a range erase — no per-key lock churn, no value copies; this
  /// is what epoch reclamation runs on the serving path). Returns the
  /// number of keys removed.
  size_t DeletePrefix(const std::string& prefix);

  size_t NumKeys() const;
  /// \brief Sum of key and value byte lengths.
  int64_t ApproxBytes() const;
  void Clear();

 private:
  // Reader-writer lock: the online query path is read-dominated (many
  // concurrent GetFrame/GetValue readers per synced frame), so readers
  // take the lock shared and only Put/Delete/Clear exclude each other.
  mutable std::shared_mutex mu_;
  std::map<std::string, std::string> table_;
};

}  // namespace one4all

#endif  // ONE4ALL_KVSTORE_KVSTORE_H_
