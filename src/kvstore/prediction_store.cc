#include "kvstore/prediction_store.h"

#include <cstdlib>
#include <cstring>

#include "core/logging.h"

namespace one4all {

std::string PredictionStore::GenerationPrefix(int64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pred/%08lld/",
                static_cast<long long>(generation));
  return buf;
}

std::string PredictionStore::FrameKeyAt(int64_t generation, int layer,
                                        int64_t t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "pred/%08lld/%02d/%012lld",
                static_cast<long long>(generation), layer,
                static_cast<long long>(t));
  return buf;
}

std::string PredictionStore::SatPlaneKeyAt(int64_t generation, int layer,
                                           int64_t t) {
  // Same 12-digit timestep suffix as FrameKeyAt, so the timestep parses
  // in CopyGeneration / DropFramesBelow work on plane keys unchanged.
  char buf[72];
  std::snprintf(buf, sizeof(buf), "pred/%08lld/sat/%02d/%012lld",
                static_cast<long long>(generation), layer,
                static_cast<long long>(t));
  return buf;
}

std::string PredictionStore::SatPlanePrefix(int64_t generation) {
  return GenerationPrefix(generation) + "sat/";
}

std::string PredictionStore::FrameKey(int layer, int64_t t) {
  return FrameKeyAt(0, layer, t);
}

void PredictionStore::SyncFrame(int layer, int64_t t, const Tensor& frame) {
  SyncFrameAt(0, layer, t, frame);
}

void PredictionStore::SetWriteFault(Status fault) {
  O4A_CHECK(!fault.ok()) << "a write fault must be an error Status";
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    fault_ = std::move(fault);
  }
  fault_active_.store(true, std::memory_order_release);
}

void PredictionStore::ClearWriteFault() {
  fault_active_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(fault_mu_);
  fault_ = Status::OK();
}

Status PredictionStore::WriteFault() const {
  if (!fault_active_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(fault_mu_);
  // A Clear between the flag load and the lock leaves fault_ OK, which
  // is exactly the right answer then.
  return fault_;
}

void PredictionStore::SyncFrameAt(int64_t generation, int layer, int64_t t,
                                  const Tensor& frame) {
  const Status status = TrySyncFrameAt(generation, layer, t, frame);
  O4A_CHECK(status.ok()) << "prediction store refused frame write: "
                         << status.ToString();
}

Status PredictionStore::TrySyncFrameAt(int64_t generation, int layer,
                                       int64_t t, const Tensor& frame) {
  O4A_RETURN_NOT_OK(WriteFault());
  O4A_CHECK_EQ(frame.ndim(), 2u);
  // A frame write invalidates its derived plane: without this, a writer
  // that overwrites a carried-forward frame (e.g. a re-staged timestep
  // with plane building disabled) would leave the previous frame's
  // plane behind for the SAT fast path to silently read. Writers that
  // do build planes re-sync the fresh plane right after.
  (void)store_->Delete(SatPlaneKeyAt(generation, layer, t));
  const int32_t h = static_cast<int32_t>(frame.dim(0));
  const int32_t w = static_cast<int32_t>(frame.dim(1));
  std::string blob;
  blob.resize(8 + sizeof(float) * static_cast<size_t>(frame.numel()));
  std::memcpy(blob.data(), &h, 4);
  std::memcpy(blob.data() + 4, &w, 4);
  std::memcpy(blob.data() + 8, frame.data(),
              sizeof(float) * static_cast<size_t>(frame.numel()));
  store_->Put(FrameKeyAt(generation, layer, t), std::move(blob));
  return Status::OK();
}

Result<Tensor> PredictionStore::GetFrame(int layer, int64_t t) const {
  return GetFrameAt(0, layer, t);
}

Result<Tensor> PredictionStore::GetFrameAt(int64_t generation, int layer,
                                           int64_t t) const {
  O4A_ASSIGN_OR_RETURN(std::string blob,
                       store_->Get(FrameKeyAt(generation, layer, t)));
  if (blob.size() < 8) {
    return Status::Internal("corrupt prediction frame blob");
  }
  int32_t h = 0, w = 0;
  std::memcpy(&h, blob.data(), 4);
  std::memcpy(&w, blob.data() + 4, 4);
  if (blob.size() != 8 + sizeof(float) * static_cast<size_t>(h) *
                             static_cast<size_t>(w)) {
    return Status::Internal("prediction frame size mismatch");
  }
  Tensor frame({h, w});
  std::memcpy(frame.data(), blob.data() + 8, blob.size() - 8);
  return frame;
}

float PredictionStore::GetValue(int layer, int64_t t, int64_t row,
                                int64_t col) const {
  auto value = TryGetValue(layer, t, row, col);
  O4A_CHECK(value.ok()) << "missing prediction frame layer=" << layer
                        << " t=" << t << ": " << value.status().ToString();
  return *value;
}

Result<float> PredictionStore::TryGetValue(int layer, int64_t t, int64_t row,
                                           int64_t col) const {
  return TryGetValueAt(0, layer, t, row, col);
}

Result<float> PredictionStore::TryGetValueAt(int64_t generation, int layer,
                                             int64_t t, int64_t row,
                                             int64_t col) const {
  O4A_ASSIGN_OR_RETURN(Tensor frame, GetFrameAt(generation, layer, t));
  if (row < 0 || row >= frame.dim(0) || col < 0 || col >= frame.dim(1)) {
    return Status::OutOfRange("grid cell outside prediction frame");
  }
  return frame.at(row, col);
}

void PredictionStore::SyncSatPlaneAt(int64_t generation, int layer,
                                     int64_t t, const SatPlane& plane) {
  const Status status = TrySyncSatPlaneAt(generation, layer, t, plane);
  O4A_CHECK(status.ok()) << "prediction store refused plane write: "
                         << status.ToString();
}

Status PredictionStore::TrySyncSatPlaneAt(int64_t generation, int layer,
                                          int64_t t, const SatPlane& plane) {
  O4A_RETURN_NOT_OK(WriteFault());
  const int32_t h = static_cast<int32_t>(plane.height());
  const int32_t w = static_cast<int32_t>(plane.width());
  std::string blob;
  blob.resize(8 + sizeof(double) * static_cast<size_t>(plane.numel()));
  std::memcpy(blob.data(), &h, 4);
  std::memcpy(blob.data() + 4, &w, 4);
  std::memcpy(blob.data() + 8, plane.data(),
              sizeof(double) * static_cast<size_t>(plane.numel()));
  store_->Put(SatPlaneKeyAt(generation, layer, t), std::move(blob));
  return Status::OK();
}

Result<SatPlane> PredictionStore::GetSatPlaneAt(int64_t generation,
                                                int layer, int64_t t) const {
  O4A_ASSIGN_OR_RETURN(std::string blob,
                       store_->Get(SatPlaneKeyAt(generation, layer, t)));
  if (blob.size() < 8) {
    return Status::Internal("corrupt summed-area plane blob");
  }
  int32_t h = 0, w = 0;
  std::memcpy(&h, blob.data(), 4);
  std::memcpy(&w, blob.data() + 4, 4);
  // Validate against the untrusted header BEFORE allocating the plane —
  // a corrupt blob must produce a Status, not a bad_alloc.
  if (h < 0 || w < 0 ||
      blob.size() != 8 + sizeof(double) *
                             static_cast<size_t>(int64_t{h} + 1) *
                             static_cast<size_t>(int64_t{w} + 1)) {
    return Status::Internal("summed-area plane size mismatch");
  }
  SatPlane plane(h, w);
  std::memcpy(plane.data(), blob.data() + 8, blob.size() - 8);
  return plane;
}

bool PredictionStore::HasSatPlaneAt(int64_t generation, int layer,
                                    int64_t t) const {
  return store_->Contains(SatPlaneKeyAt(generation, layer, t));
}

int64_t PredictionStore::BuildSatPlanes(int64_t generation,
                                        ThreadPool* pool) {
  const std::string prefix = GenerationPrefix(generation);
  int64_t built = 0;
  for (const std::string& key : store_->KeysWithPrefix(prefix)) {
    if (key.compare(prefix.size(), 4, "sat/") == 0) continue;
    // Frame keys are "<prefix>LL/TTTTTTTTTTTT".
    const int layer = std::atoi(key.c_str() + prefix.size());
    const int64_t t =
        std::strtoll(key.c_str() + (key.size() - 12), nullptr, 10);
    auto frame = GetFrameAt(generation, layer, t);
    O4A_CHECK(frame.ok()) << frame.status().ToString();
    SyncSatPlaneAt(generation, layer, t, BuildSatPlane(*frame, pool));
    ++built;
  }
  return built;
}

bool PredictionStore::HasFrame(int layer, int64_t t) const {
  return HasFrameAt(0, layer, t);
}

bool PredictionStore::HasFrameAt(int64_t generation, int layer,
                                 int64_t t) const {
  return store_->Contains(FrameKeyAt(generation, layer, t));
}

int64_t PredictionStore::CopyGeneration(int64_t from, int64_t to,
                                        int64_t min_t) {
  O4A_CHECK(from != to);
  const std::string from_prefix = GenerationPrefix(from);
  const std::string to_prefix = GenerationPrefix(to);
  int64_t copied = 0;
  for (const auto& [key, blob] : store_->ScanPrefix(from_prefix)) {
    if (min_t != INT64_MIN) {
      // FrameKeyAt keys end in the zero-padded 12-digit timestep.
      const int64_t t =
          std::strtoll(key.c_str() + (key.size() - 12), nullptr, 10);
      if (t < min_t) continue;
    }
    store_->Put(to_prefix + key.substr(from_prefix.size()), blob);
    ++copied;
  }
  return copied;
}

int64_t PredictionStore::DropGeneration(int64_t generation) {
  return static_cast<int64_t>(
      store_->DeletePrefix(GenerationPrefix(generation)));
}

int64_t PredictionStore::DropFramesBelow(int64_t generation, int64_t min_t) {
  int64_t dropped = 0;
  for (const std::string& key :
       store_->KeysWithPrefix(GenerationPrefix(generation))) {
    // FrameKeyAt keys end in the zero-padded 12-digit timestep.
    const int64_t t =
        std::strtoll(key.c_str() + (key.size() - 12), nullptr, 10);
    if (t < min_t && store_->Delete(key).ok()) ++dropped;
  }
  return dropped;
}

int64_t PredictionStore::NumFramesAt(int64_t generation) const {
  // Planes share the generation prefix (so reclamation drops them with
  // their frames) but are derived data, not frames. One scan, not two
  // counts — a difference of independently-locked counts could go
  // negative under a concurrent staging writer.
  const std::string prefix = GenerationPrefix(generation);
  int64_t frames = 0;
  for (const std::string& key : store_->KeysWithPrefix(prefix)) {
    if (key.compare(prefix.size(), 4, "sat/") != 0) ++frames;
  }
  return frames;
}

int64_t PredictionStore::NumSatPlanesAt(int64_t generation) const {
  return static_cast<int64_t>(
      store_->CountPrefix(SatPlanePrefix(generation)));
}

}  // namespace one4all
