#include "kvstore/prediction_store.h"

#include <climits>
#include <utility>
#include <vector>

#include "core/logging.h"

namespace one4all {

void PredictionStore::SyncFrame(int layer, int64_t t, const Tensor& frame) {
  SyncFrameAt(0, layer, t, frame);
}

void PredictionStore::SetWriteFault(Status fault) {
  O4A_CHECK(!fault.ok()) << "a write fault must be an error Status";
  {
    std::lock_guard<std::mutex> lock(fault_mu_);
    fault_ = std::move(fault);
  }
  fault_active_.store(true, std::memory_order_release);
}

void PredictionStore::ClearWriteFault() {
  fault_active_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(fault_mu_);
  fault_ = Status::OK();
}

Status PredictionStore::WriteFault() const {
  if (!fault_active_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(fault_mu_);
  // A Clear between the flag load and the lock leaves fault_ OK, which
  // is exactly the right answer then.
  return fault_;
}

bool PredictionStore::SnapshotEntry(const Key& key, Entry* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  *out = it->second;
  return true;
}

void PredictionStore::SyncFrameAt(int64_t generation, int layer, int64_t t,
                                  const Tensor& frame) {
  const Status status = TrySyncFrameAt(generation, layer, t, frame);
  O4A_CHECK(status.ok()) << "prediction store refused frame write: "
                         << status.ToString();
}

Status PredictionStore::TrySyncFrameAt(int64_t generation, int layer,
                                       int64_t t, const Tensor& frame) {
  O4A_RETURN_NOT_OK(WriteFault());
  O4A_CHECK_EQ(frame.ndim(), 2u);
  // Tiling happens outside the lock; the map mutation is a pointer swap.
  auto tiled = std::make_shared<const TiledFrame>(TiledFrame::FromTensor(frame));
  std::unique_lock<std::shared_mutex> lock(mu_);
  Entry& entry = entries_[Key{generation, layer, t}];
  entry.frame = std::move(tiled);
  // A frame write invalidates its derived plane: without this, a writer
  // that overwrites a carried-forward frame (e.g. a re-staged timestep
  // with plane building disabled) would leave the previous frame's
  // plane behind for the SAT fast path to silently read. Writers that
  // do build planes rebuild the fresh plane right after.
  entry.plane.reset();
  entry.dirty.reset();
  return Status::OK();
}

Status PredictionStore::TrySyncFrameDeltaAt(int64_t generation, int layer,
                                            int64_t t, const Tensor& frame,
                                            int64_t base_t,
                                            const TileDirtySet& dirty,
                                            StageStats* stats) {
  O4A_RETURN_NOT_OK(WriteFault());
  O4A_CHECK_EQ(frame.ndim(), 2u);
  Entry base;
  const bool have_base =
      SnapshotEntry(Key{generation, layer, base_t}, &base) &&
      base.frame != nullptr;
  int64_t shared = 0;
  auto tiled = std::make_shared<const TiledFrame>(
      have_base ? TiledFrame::FromDelta(frame, *base.frame, dirty, &shared)
                : TiledFrame::FromTensor(frame));
  if (stats != nullptr) {
    stats->frame_tiles_total = tiled->tiles_h() * tiled->tiles_w();
    stats->frame_tiles_shared = shared;
  }
  auto recorded = dirty.empty()
                      ? std::shared_ptr<const TileDirtySet>()
                      : std::make_shared<const TileDirtySet>(dirty);
  std::unique_lock<std::shared_mutex> lock(mu_);
  Entry& entry = entries_[Key{generation, layer, t}];
  entry.frame = std::move(tiled);
  entry.plane.reset();
  entry.dirty = std::move(recorded);
  return Status::OK();
}

Result<Tensor> PredictionStore::GetFrame(int layer, int64_t t) const {
  return GetFrameAt(0, layer, t);
}

Result<Tensor> PredictionStore::GetFrameAt(int64_t generation, int layer,
                                           int64_t t) const {
  O4A_ASSIGN_OR_RETURN(std::shared_ptr<const TiledFrame> frame,
                       GetTiledFrameAt(generation, layer, t));
  return frame->Materialize();
}

Result<std::shared_ptr<const TiledFrame>> PredictionStore::GetTiledFrameAt(
    int64_t generation, int layer, int64_t t) const {
  Entry entry;
  if (!SnapshotEntry(Key{generation, layer, t}, &entry) ||
      entry.frame == nullptr) {
    return Status::NotFound("no prediction frame for key");
  }
  return entry.frame;
}

Result<std::shared_ptr<const TiledSatPlane>>
PredictionStore::GetTiledSatPlaneAt(int64_t generation, int layer,
                                    int64_t t) const {
  Entry entry;
  if (!SnapshotEntry(Key{generation, layer, t}, &entry) ||
      entry.plane == nullptr) {
    return Status::NotFound("no summed-area plane for key");
  }
  return entry.plane;
}

std::shared_ptr<const TileDirtySet> PredictionStore::GetDirtyAt(
    int64_t generation, int layer, int64_t t) const {
  Entry entry;
  if (!SnapshotEntry(Key{generation, layer, t}, &entry)) return nullptr;
  return entry.dirty;
}

float PredictionStore::GetValue(int layer, int64_t t, int64_t row,
                                int64_t col) const {
  auto value = TryGetValue(layer, t, row, col);
  O4A_CHECK(value.ok()) << "missing prediction frame layer=" << layer
                        << " t=" << t << ": " << value.status().ToString();
  return *value;
}

Result<float> PredictionStore::TryGetValue(int layer, int64_t t, int64_t row,
                                           int64_t col) const {
  return TryGetValueAt(0, layer, t, row, col);
}

Result<float> PredictionStore::TryGetValueAt(int64_t generation, int layer,
                                             int64_t t, int64_t row,
                                             int64_t col) const {
  O4A_ASSIGN_OR_RETURN(std::shared_ptr<const TiledFrame> frame,
                       GetTiledFrameAt(generation, layer, t));
  if (row < 0 || row >= frame->height() || col < 0 ||
      col >= frame->width()) {
    return Status::OutOfRange("grid cell outside prediction frame");
  }
  return frame->at(row, col);
}

Status PredictionStore::TryBuildSatPlaneAt(int64_t generation, int layer,
                                           int64_t t, ThreadPool* pool) {
  O4A_RETURN_NOT_OK(WriteFault());
  O4A_ASSIGN_OR_RETURN(std::shared_ptr<const TiledFrame> frame,
                       GetTiledFrameAt(generation, layer, t));
  auto plane = std::make_shared<const TiledSatPlane>(
      TiledSatPlane::Build(*frame, pool));
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(Key{generation, layer, t});
  // The frame could have been dropped or overwritten while we built
  // outside the lock; attaching a stale plane to a fresh frame would
  // hand the fast path wrong sums, so only publish onto the same frame.
  if (it == entries_.end() || it->second.frame != frame) {
    return Status::OK();
  }
  it->second.plane = std::move(plane);
  return Status::OK();
}

Status PredictionStore::TryBuildSatPlaneDeltaAt(int64_t generation, int layer,
                                                int64_t t, int64_t base_t,
                                                ThreadPool* pool,
                                                StageStats* stats) {
  O4A_RETURN_NOT_OK(WriteFault());
  Entry entry;
  if (!SnapshotEntry(Key{generation, layer, t}, &entry) ||
      entry.frame == nullptr) {
    return Status::NotFound("no prediction frame for key");
  }
  Entry base;
  const bool have_base =
      SnapshotEntry(Key{generation, layer, base_t}, &base) &&
      base.plane != nullptr;
  int64_t reused = 0;
  auto plane = std::make_shared<const TiledSatPlane>(
      have_base && entry.dirty != nullptr
          ? TiledSatPlane::BuildDelta(*entry.frame, *base.plane,
                                      *entry.dirty, &reused, pool)
          : TiledSatPlane::Build(*entry.frame, pool));
  if (stats != nullptr) stats->plane_tiles_reused = reused;
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(Key{generation, layer, t});
  if (it == entries_.end() || it->second.frame != entry.frame) {
    return Status::OK();
  }
  it->second.plane = std::move(plane);
  return Status::OK();
}

Result<SatPlane> PredictionStore::GetSatPlaneAt(int64_t generation,
                                                int layer, int64_t t) const {
  Entry entry;
  if (!SnapshotEntry(Key{generation, layer, t}, &entry) ||
      entry.plane == nullptr) {
    return Status::NotFound("no summed-area plane for key");
  }
  // Rebuilt from the materialized frame rather than the tiled plane, so
  // the result is bit-identical to BuildSatPlane of the synced frame —
  // the legacy surface older tests and tools pin. O(cells); hot readers
  // use GetTiledSatPlaneAt.
  return BuildSatPlane(entry.frame->Materialize());
}

bool PredictionStore::HasSatPlaneAt(int64_t generation, int layer,
                                    int64_t t) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(Key{generation, layer, t});
  return it != entries_.end() && it->second.plane != nullptr;
}

int64_t PredictionStore::BuildSatPlanes(int64_t generation,
                                        ThreadPool* pool) {
  // Snapshot the generation's keys first: building happens outside the
  // lock and must not iterate a mutating map.
  std::vector<Key> keys;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (auto it = entries_.lower_bound(Key{generation, INT_MIN, INT64_MIN});
         it != entries_.end() && std::get<0>(it->first) == generation; ++it) {
      keys.push_back(it->first);
    }
  }
  int64_t built = 0;
  for (const Key& key : keys) {
    const Status status =
        TryBuildSatPlaneAt(generation, std::get<1>(key), std::get<2>(key),
                           pool);
    O4A_CHECK(status.ok()) << status.ToString();
    ++built;
  }
  return built;
}

bool PredictionStore::HasFrame(int layer, int64_t t) const {
  return HasFrameAt(0, layer, t);
}

bool PredictionStore::HasFrameAt(int64_t generation, int layer,
                                 int64_t t) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(Key{generation, layer, t});
  return it != entries_.end() && it->second.frame != nullptr;
}

int64_t PredictionStore::CopyGeneration(int64_t from, int64_t to,
                                        int64_t min_t) {
  O4A_CHECK(from != to);
  // Snapshot, then insert: iterating and mutating the same map under one
  // lock would invalidate nothing (std::map), but two passes keep the
  // exclusive section minimal.
  std::vector<std::pair<Key, Entry>> copies;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (auto it = entries_.lower_bound(Key{from, INT_MIN, INT64_MIN});
         it != entries_.end() && std::get<0>(it->first) == from; ++it) {
      if (std::get<2>(it->first) < min_t) continue;
      copies.emplace_back(
          Key{to, std::get<1>(it->first), std::get<2>(it->first)},
          it->second);
    }
  }
  int64_t copied = 0;
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& [key, entry] : copies) {
    copied += 1 + (entry.plane != nullptr ? 1 : 0);
    entries_[key] = std::move(entry);
  }
  return copied;
}

int64_t PredictionStore::DropGeneration(int64_t generation) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto begin = entries_.lower_bound(Key{generation, INT_MIN, INT64_MIN});
  auto end = begin;
  int64_t dropped = 0;
  while (end != entries_.end() && std::get<0>(end->first) == generation) {
    dropped += 1 + (end->second.plane != nullptr ? 1 : 0);
    ++end;
  }
  entries_.erase(begin, end);
  return dropped;
}

int64_t PredictionStore::DropFramesBelow(int64_t generation, int64_t min_t) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  int64_t dropped = 0;
  auto it = entries_.lower_bound(Key{generation, INT_MIN, INT64_MIN});
  while (it != entries_.end() && std::get<0>(it->first) == generation) {
    if (std::get<2>(it->first) < min_t) {
      dropped += 1 + (it->second.plane != nullptr ? 1 : 0);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return dropped;
}

int64_t PredictionStore::NumFramesAt(int64_t generation) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  int64_t frames = 0;
  for (auto it = entries_.lower_bound(Key{generation, INT_MIN, INT64_MIN});
       it != entries_.end() && std::get<0>(it->first) == generation; ++it) {
    if (it->second.frame != nullptr) ++frames;
  }
  return frames;
}

int64_t PredictionStore::NumSatPlanesAt(int64_t generation) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  int64_t planes = 0;
  for (auto it = entries_.lower_bound(Key{generation, INT_MIN, INT64_MIN});
       it != entries_.end() && std::get<0>(it->first) == generation; ++it) {
    if (it->second.plane != nullptr) ++planes;
  }
  return planes;
}

}  // namespace one4all
