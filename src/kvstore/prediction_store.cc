#include "kvstore/prediction_store.h"

#include <cstring>

#include "core/logging.h"

namespace one4all {

std::string PredictionStore::FrameKey(int layer, int64_t t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "pred/%02d/%012lld", layer,
                static_cast<long long>(t));
  return buf;
}

void PredictionStore::SyncFrame(int layer, int64_t t, const Tensor& frame) {
  O4A_CHECK_EQ(frame.ndim(), 2u);
  const int32_t h = static_cast<int32_t>(frame.dim(0));
  const int32_t w = static_cast<int32_t>(frame.dim(1));
  std::string blob;
  blob.resize(8 + sizeof(float) * static_cast<size_t>(frame.numel()));
  std::memcpy(blob.data(), &h, 4);
  std::memcpy(blob.data() + 4, &w, 4);
  std::memcpy(blob.data() + 8, frame.data(),
              sizeof(float) * static_cast<size_t>(frame.numel()));
  store_->Put(FrameKey(layer, t), std::move(blob));
}

Result<Tensor> PredictionStore::GetFrame(int layer, int64_t t) const {
  O4A_ASSIGN_OR_RETURN(std::string blob, store_->Get(FrameKey(layer, t)));
  if (blob.size() < 8) {
    return Status::Internal("corrupt prediction frame blob");
  }
  int32_t h = 0, w = 0;
  std::memcpy(&h, blob.data(), 4);
  std::memcpy(&w, blob.data() + 4, 4);
  if (blob.size() != 8 + sizeof(float) * static_cast<size_t>(h) *
                             static_cast<size_t>(w)) {
    return Status::Internal("prediction frame size mismatch");
  }
  Tensor frame({h, w});
  std::memcpy(frame.data(), blob.data() + 8, blob.size() - 8);
  return frame;
}

float PredictionStore::GetValue(int layer, int64_t t, int64_t row,
                                int64_t col) const {
  auto frame = GetFrame(layer, t);
  O4A_CHECK(frame.ok()) << "missing prediction frame layer=" << layer
                        << " t=" << t;
  return frame->at(row, col);
}

bool PredictionStore::HasFrame(int layer, int64_t t) const {
  return store_->Contains(FrameKey(layer, t));
}

}  // namespace one4all
