#include "kvstore/prediction_store.h"

#include <cstdlib>
#include <cstring>

#include "core/logging.h"

namespace one4all {

std::string PredictionStore::GenerationPrefix(int64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "pred/%08lld/",
                static_cast<long long>(generation));
  return buf;
}

std::string PredictionStore::FrameKeyAt(int64_t generation, int layer,
                                        int64_t t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "pred/%08lld/%02d/%012lld",
                static_cast<long long>(generation), layer,
                static_cast<long long>(t));
  return buf;
}

std::string PredictionStore::FrameKey(int layer, int64_t t) {
  return FrameKeyAt(0, layer, t);
}

void PredictionStore::SyncFrame(int layer, int64_t t, const Tensor& frame) {
  SyncFrameAt(0, layer, t, frame);
}

void PredictionStore::SyncFrameAt(int64_t generation, int layer, int64_t t,
                                  const Tensor& frame) {
  O4A_CHECK_EQ(frame.ndim(), 2u);
  const int32_t h = static_cast<int32_t>(frame.dim(0));
  const int32_t w = static_cast<int32_t>(frame.dim(1));
  std::string blob;
  blob.resize(8 + sizeof(float) * static_cast<size_t>(frame.numel()));
  std::memcpy(blob.data(), &h, 4);
  std::memcpy(blob.data() + 4, &w, 4);
  std::memcpy(blob.data() + 8, frame.data(),
              sizeof(float) * static_cast<size_t>(frame.numel()));
  store_->Put(FrameKeyAt(generation, layer, t), std::move(blob));
}

Result<Tensor> PredictionStore::GetFrame(int layer, int64_t t) const {
  return GetFrameAt(0, layer, t);
}

Result<Tensor> PredictionStore::GetFrameAt(int64_t generation, int layer,
                                           int64_t t) const {
  O4A_ASSIGN_OR_RETURN(std::string blob,
                       store_->Get(FrameKeyAt(generation, layer, t)));
  if (blob.size() < 8) {
    return Status::Internal("corrupt prediction frame blob");
  }
  int32_t h = 0, w = 0;
  std::memcpy(&h, blob.data(), 4);
  std::memcpy(&w, blob.data() + 4, 4);
  if (blob.size() != 8 + sizeof(float) * static_cast<size_t>(h) *
                             static_cast<size_t>(w)) {
    return Status::Internal("prediction frame size mismatch");
  }
  Tensor frame({h, w});
  std::memcpy(frame.data(), blob.data() + 8, blob.size() - 8);
  return frame;
}

float PredictionStore::GetValue(int layer, int64_t t, int64_t row,
                                int64_t col) const {
  auto value = TryGetValue(layer, t, row, col);
  O4A_CHECK(value.ok()) << "missing prediction frame layer=" << layer
                        << " t=" << t << ": " << value.status().ToString();
  return *value;
}

Result<float> PredictionStore::TryGetValue(int layer, int64_t t, int64_t row,
                                           int64_t col) const {
  return TryGetValueAt(0, layer, t, row, col);
}

Result<float> PredictionStore::TryGetValueAt(int64_t generation, int layer,
                                             int64_t t, int64_t row,
                                             int64_t col) const {
  O4A_ASSIGN_OR_RETURN(Tensor frame, GetFrameAt(generation, layer, t));
  if (row < 0 || row >= frame.dim(0) || col < 0 || col >= frame.dim(1)) {
    return Status::OutOfRange("grid cell outside prediction frame");
  }
  return frame.at(row, col);
}

bool PredictionStore::HasFrame(int layer, int64_t t) const {
  return HasFrameAt(0, layer, t);
}

bool PredictionStore::HasFrameAt(int64_t generation, int layer,
                                 int64_t t) const {
  return store_->Contains(FrameKeyAt(generation, layer, t));
}

int64_t PredictionStore::CopyGeneration(int64_t from, int64_t to,
                                        int64_t min_t) {
  O4A_CHECK(from != to);
  const std::string from_prefix = GenerationPrefix(from);
  const std::string to_prefix = GenerationPrefix(to);
  int64_t copied = 0;
  for (const auto& [key, blob] : store_->ScanPrefix(from_prefix)) {
    if (min_t != INT64_MIN) {
      // FrameKeyAt keys end in the zero-padded 12-digit timestep.
      const int64_t t =
          std::strtoll(key.c_str() + (key.size() - 12), nullptr, 10);
      if (t < min_t) continue;
    }
    store_->Put(to_prefix + key.substr(from_prefix.size()), blob);
    ++copied;
  }
  return copied;
}

int64_t PredictionStore::DropGeneration(int64_t generation) {
  return static_cast<int64_t>(
      store_->DeletePrefix(GenerationPrefix(generation)));
}

int64_t PredictionStore::DropFramesBelow(int64_t generation, int64_t min_t) {
  int64_t dropped = 0;
  for (const std::string& key :
       store_->KeysWithPrefix(GenerationPrefix(generation))) {
    // FrameKeyAt keys end in the zero-padded 12-digit timestep.
    const int64_t t =
        std::strtoll(key.c_str() + (key.size() - 12), nullptr, 10);
    if (t < min_t && store_->Delete(key).ok()) ++dropped;
  }
  return dropped;
}

int64_t PredictionStore::NumFramesAt(int64_t generation) const {
  return static_cast<int64_t>(
      store_->CountPrefix(GenerationPrefix(generation)));
}

}  // namespace one4all
